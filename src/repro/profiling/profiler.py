"""The profiling runtime attached to the DBM during training runs.

Profiling runs execute through the *instrumented* compiled tier
(:mod:`repro.dbm.jit`): the memory hook installed for shadow-memory
tracking routes each block to a compiled variant that threads the hook
through its memory accesses, rather than falling back to per-instruction
reference dispatch.  The hook is re-read per access, so the external-call
windows (which install and remove a counting hook mid-run) observe
exactly the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dbm.rtcalls import RTCallID
from repro.rewrite.metadata import decode_operand
from repro.telemetry.core import get_recorder


@dataclass
class ExCallProfile:
    """Observed behaviour of one external call site inside a loop."""

    name: str
    invocations: int = 0
    instructions: int = 0
    heap_reads: int = 0
    heap_writes: int = 0

    @property
    def instructions_per_call(self) -> float:
        return self.instructions / self.invocations if self.invocations else 0.0

    @property
    def reads_per_call(self) -> float:
        return self.heap_reads / self.invocations if self.invocations else 0.0

    @property
    def writes_per_call(self) -> float:
        return self.heap_writes / self.invocations if self.invocations else 0.0


@dataclass
class LoopProfile:
    """Everything profiling learned about one loop."""

    loop_id: int
    invocations: int = 0
    iterations: int = 0
    instructions: int = 0  # dynamic instructions while the loop was active
    # Instructions attributed only while this loop was the *innermost*
    # active one (non-overlapping across loops; used by paper Fig. 6).
    instructions_exclusive: int = 0
    has_dependence: bool = False
    dependence_samples: list = field(default_factory=list)
    excalls: dict[int, ExCallProfile] = field(default_factory=dict)


@dataclass
class ProfileResult:
    """The outcome of one training-stage profiling run."""

    total_instructions: int = 0
    loops: dict[int, LoopProfile] = field(default_factory=dict)

    def coverage(self, loop_id: int) -> float:
        """Fraction of all dynamic instructions spent inside the loop."""
        profile = self.loops.get(loop_id)
        if profile is None or not self.total_instructions:
            return 0.0
        return profile.instructions / self.total_instructions

    def exclusive_coverage(self, loop_id: int) -> float:
        """Non-overlapping coverage (innermost-loop attribution)."""
        profile = self.loops.get(loop_id)
        if profile is None or not self.total_instructions:
            return 0.0
        return profile.instructions_exclusive / self.total_instructions

    def loops_above_coverage(self, threshold: float) -> list[int]:
        return sorted(loop_id for loop_id in self.loops
                      if self.coverage(loop_id) >= threshold)


class _LoopFrame:
    __slots__ = ("loop_id", "iteration", "shadow_writes", "shadow_reads",
                 "instructions_at_start")

    def __init__(self, loop_id: int) -> None:
        self.loop_id = loop_id
        self.iteration = 0
        self.shadow_writes: dict[int, int] = {}
        self.shadow_reads: dict[int, int] = {}
        self.instructions_at_start = 0


class Profiler:
    """Registers the PROF_* rtcalls on a DBM and accumulates profiles."""

    def __init__(self, dbm) -> None:
        self.dbm = dbm
        self.profiles: dict[int, LoopProfile] = {}
        self._frames: list[_LoopFrame] = []
        self._excall_stack: list[tuple] = []
        dbm.register_rtcall(RTCallID.PROF_LOOP_START, self._loop_start)
        dbm.register_rtcall(RTCallID.PROF_LOOP_ITER, self._loop_iter)
        dbm.register_rtcall(RTCallID.PROF_LOOP_FINISH, self._loop_finish)
        dbm.register_rtcall(RTCallID.PROF_MEM, self._mem_access)
        dbm.register_rtcall(RTCallID.PROF_EXCALL_START, self._excall_start)
        dbm.register_rtcall(RTCallID.PROF_EXCALL_FINISH, self._excall_finish)
        dbm.block_listeners.append(self._on_block)

    # -- profile collection ---------------------------------------------------

    def _profile(self, loop_id: int) -> LoopProfile:
        profile = self.profiles.get(loop_id)
        if profile is None:
            profile = LoopProfile(loop_id=loop_id)
            self.profiles[loop_id] = profile
        return profile

    def _charge(self, ctx) -> None:
        ctx.cycles += self.dbm.cost.prof_event_cycles

    def _loop_start(self, ctx, loop_id: int):
        self._charge(ctx)
        profile = self._profile(loop_id)
        profile.invocations += 1
        self._frames.append(_LoopFrame(loop_id))
        return None

    def _loop_iter(self, ctx, loop_id: int):
        self._charge(ctx)
        for frame in reversed(self._frames):
            if frame.loop_id == loop_id:
                frame.iteration += 1
                self._profile(loop_id).iterations += 1
                break
        return None

    def _loop_finish(self, ctx, loop_id: int):
        self._charge(ctx)
        # Exit targets can be reached from outside the loop; only pop if
        # the loop is actually active (innermost occurrence).
        for index in range(len(self._frames) - 1, -1, -1):
            if self._frames[index].loop_id == loop_id:
                del self._frames[index:]
                break
        return None

    def _on_block(self, ctx, block) -> None:
        # Block listener: its presence forces the dispatcher to stay on
        # per-block dispatch (never whole-loop traces), so every executed
        # block is attributed here even under the compiled tier.
        frames = self._frames
        if not frames:
            return
        count = len(block.instructions)
        if len(frames) == 1:
            # The overwhelmingly common case (one active loop): no dedup
            # set allocation on the per-block hot path.
            profile = self._profile(frames[0].loop_id)
            profile.instructions += count
            profile.instructions_exclusive += count
            return
        seen = set()
        for frame in frames:
            if frame.loop_id in seen:
                continue  # recursive re-activation counts once
            seen.add(frame.loop_id)
            self._profile(frame.loop_id).instructions += count
        innermost = frames[-1].loop_id
        self._profile(innermost).instructions_exclusive += count

    def _mem_access(self, ctx, record_index: int):
        self._charge(ctx)
        record = self.dbm.schedule.record(record_index)
        _, loop_id, operand_record, is_write, lanes = record
        frame = self._frame_of(loop_id)
        if frame is None:
            return None
        operand = decode_operand(tuple(operand_record))
        addr = self.dbm.interp.ea(ctx, operand)
        profile = self._profile(loop_id)
        for k in range(lanes):
            self._shadow_access(profile, frame, addr + 8 * k, is_write)
        return None

    def _shadow_access(self, profile: LoopProfile, frame: "_LoopFrame",
                       word: int, is_write: bool) -> None:
        """Cross-iteration dependence detection against the loop shadow."""
        if is_write:
            previous_read = frame.shadow_reads.get(word)
            previous_write = frame.shadow_writes.get(word)
            for previous in (previous_read, previous_write):
                if previous is not None and previous != frame.iteration:
                    self._record_dependence(profile, word, previous,
                                            frame.iteration)
            frame.shadow_writes[word] = frame.iteration
        else:
            previous_write = frame.shadow_writes.get(word)
            if previous_write is not None \
                    and previous_write != frame.iteration:
                self._record_dependence(profile, word, previous_write,
                                        frame.iteration)
            frame.shadow_reads[word] = frame.iteration

    @staticmethod
    def _record_dependence(profile: LoopProfile, word: int,
                           from_iteration: int, to_iteration: int) -> None:
        profile.has_dependence = True
        if len(profile.dependence_samples) < 8:
            profile.dependence_samples.append(
                (word, from_iteration, to_iteration))

    def _frame_of(self, loop_id: int) -> _LoopFrame | None:
        for frame in reversed(self._frames):
            if frame.loop_id == loop_id:
                return frame
        return None

    # -- external call windows ---------------------------------------------------

    def _excall_start(self, ctx, record_index: int):
        self._charge(ctx)
        record = self.dbm.schedule.record(record_index)
        _, loop_id, name = record
        counters = [0, 0]  # heap reads, writes
        frame = self._frame_of(loop_id)
        profile = self._profile(loop_id)

        def hook(hctx, ins, addr, is_write, lanes):
            counters[1 if is_write else 0] += lanes
            # The call's accesses also feed the enclosing loop's
            # dependence shadow: dynamically discovered code can carry
            # cross-iteration dependences (e.g. overlapping halos).
            if frame is not None:
                for k in range(lanes):
                    self._shadow_access(profile, frame, addr + 8 * k,
                                        is_write)
            # Chain to the window below: when two instrumented loops share
            # a call site (a nested loop pair), every open window must see
            # the call's accesses, not just the innermost one's.
            if previous is not None:
                previous(hctx, ins, addr, is_write, lanes)

        previous = self.dbm.interp.mem_hook
        self.dbm.interp.mem_hook = hook
        self._excall_stack.append(
            (record_index, loop_id, name, ctx.instructions, counters,
             previous))
        return None

    def _excall_finish(self, ctx, record_index: int):
        self._charge(ctx)
        if not self._excall_stack:
            return None
        (start_index, loop_id, name, instructions_before, counters,
         previous) = self._excall_stack.pop()
        self.dbm.interp.mem_hook = previous
        profile = self._profile(loop_id)
        excall = profile.excalls.get(start_index)
        if excall is None:
            excall = ExCallProfile(name=name)
            profile.excalls[start_index] = excall
        excall.invocations += 1
        # The window spans the call; subtract the two rtcall instructions.
        excall.instructions += max(
            0, ctx.instructions - instructions_before - 2)
        excall.heap_reads += counters[0]
        excall.heap_writes += counters[1]
        return None

    # -- result ------------------------------------------------------------------

    def result(self, execution) -> ProfileResult:
        return ProfileResult(total_instructions=execution.instructions,
                             loops=dict(self.profiles))


def run_profiling(process, schedule, cost_model=None,
                  max_instructions=None) -> tuple[ProfileResult, object]:
    """Run one training-stage pass; returns (profile, execution result)."""
    from repro.dbm.executor import DEFAULT_INSTRUCTION_LIMIT
    from repro.dbm.modifier import JanusDBM

    dbm = JanusDBM(process, schedule=schedule, cost_model=cost_model)
    profiler = Profiler(dbm)
    limit = max_instructions if max_instructions is not None \
        else DEFAULT_INSTRUCTION_LIMIT
    with get_recorder().span("profiling.run", cat="profiling",
                             rules=len(schedule.rules)) as span:
        execution = dbm.run(max_instructions=limit)
        profile = profiler.result(execution)
        span.set(loops_profiled=len(profile.loops),
                 instructions=execution.instructions)
    return profile, execution
