"""Statically-driven profiling (paper section II-C).

The training stage runs the application under the DBM with a *profiling*
rewrite schedule.  Only the loops of interest are instrumented, and only
the instructions that matter — which is why Janus' profiling is faster than
generic binary instrumentation.

* Coverage profiling counts dynamic instructions spent inside each feasible
  loop (a proxy for time), used to filter out low-coverage loops.
* Dependence profiling watches the memory accesses static analysis could
  not prove independent, and reports whether a cross-iteration dependence
  actually occurred — the Type C / Type D split.
"""

from repro.profiling.profiler import (
    ExCallProfile,
    LoopProfile,
    ProfileResult,
    Profiler,
    run_profiling,
)

__all__ = ["ExCallProfile", "LoopProfile", "ProfileResult", "Profiler",
           "run_profiling"]
