"""Command-line interface: the analyser and DBM as separate tools.

Mirrors the paper's deployment: the static side produces artefacts
(`compile`, `analyze`, `schedule`), the dynamic side consumes them (`run`),
and `figures` regenerates the evaluation.

    python -m repro compile program.jc -o app.jelf -O3 --personality gcc
    python -m repro analyze app.jelf
    python -m repro schedule app.jelf -o app.jrs --train-input 2
    python -m repro run app.jelf --mode native --input 4
    python -m repro run app.jelf --schedule app.jrs --threads 8 --input 4
    python -m repro figures fig7
    python -m repro trace 470.lbm -o trace.json --mode janus
    python -m repro stats trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis import analyze_image
from repro.dbm.executor import DEFAULT_INSTRUCTION_LIMIT, run_native
from repro.dbm.modifier import JanusDBM, run_under_dbm
from repro.dbm.runtime import ParallelRuntime
from repro.jbin.image import JELF
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode
from repro.rewrite.schedule import RewriteSchedule
from repro.util import DigestCache, cached_image_digest


def _load_binary(path: str, digest_cache: str | None) -> tuple:
    """(image, raw bytes, content digest) for one binary argument.

    The digest is the registry/service keying identity
    (:func:`repro.util.image_digest`); ``--digest-cache`` persists it so
    repeat invocations over the same binary never recompute it, and the
    CLI, the eval cache and the daemon all share one keying path.
    """
    raw = open(path, "rb").read()
    cache = DigestCache(digest_cache) if digest_cache else None
    image = JELF.deserialize(raw)
    digest = cached_image_digest(raw, cache=cache,
                                 deserialize=lambda _: image)
    return image, raw, digest


def _cmd_compile(args) -> int:
    source = open(args.source).read()
    options = CompileOptions(opt_level=args.opt_level,
                             personality=args.personality,
                             mavx=args.mavx, parallel=args.parallel)
    image = compile_source(source, options)
    with open(args.output, "wb") as handle:
        handle.write(image.serialize())
    print(f"wrote {args.output}: {len(image.text.data)} bytes of code, "
          f"{len(image.imports)} imports [{options.comment}]")
    return 0


def _cmd_analyze(args) -> int:
    image, _raw, digest = _load_binary(args.binary, args.digest_cache)
    analysis = analyze_image(image, jobs=args.jobs)
    print(f"{args.binary}: {len(analysis.functions)} functions, "
          f"{len(analysis.loops)} loops [sha256:{digest[:16]}]")
    print(f"{'loop':>4s} {'function':>10s} {'header':>10s} "
          f"{'category':20s} {'trips':>8s} {'checks':>6s} notes")
    for result in analysis.loops:
        iterator = result.induction.iterator if result.induction else None
        trips = "-"
        if iterator is not None:
            trips = (str(iterator.static_trip_count)
                     if iterator.static_trip_count is not None
                     else "runtime")
        checks = (len(result.alias.bounds_checks)
                  if result.alias is not None else 0)
        note = result.reasons[0] if result.reasons else ""
        print(f"{result.loop_id:4d} {result.loop.function_entry:#10x} "
              f"{result.loop.header:#10x} {result.category.value:20s} "
              f"{trips:>8s} {checks:6d} {note}")
    if args.mode == "vector":
        from repro.rewrite import vector_candidates

        print()
        print(f"{'loop':>4s} {'vector':>7s} {'lanes':>5s} {'aligned':>7s} "
              f"reason")
        for verdict in vector_candidates(analysis):
            status = "legal" if verdict.ok else "reject"
            reason = "" if verdict.ok else (verdict.reasons[0]
                                            if verdict.reasons else "")
            print(f"{verdict.loop_id:4d} {status:>7s} {verdict.lanes:5d} "
                  f"{str(verdict.aligned):>7s} {reason}")
    elif args.mode == "prefetch":
        from repro.rewrite import generate_prefetch_schedule

        schedule = generate_prefetch_schedule(analysis)
        by_loop: dict[int, int] = {}
        for rule in schedule.rules:
            record = schedule.record(rule.data)
            by_loop[record[1]] = by_loop.get(record[1], 0) + 1
        print()
        print(f"prefetch: {len(schedule.rules)} hint rules across "
              f"{len(by_loop)} loops")
        for loop_id in sorted(by_loop):
            print(f"{loop_id:4d} {by_loop[loop_id]:3d} hints")
    return 0


def _cmd_schedule(args) -> int:
    image, _raw, digest = _load_binary(args.binary, args.digest_cache)
    janus = Janus(image, JanusConfig(n_threads=args.threads))
    training = None
    if not args.no_train:
        training = janus.train(train_inputs=args.train_input)
    mode = SelectionMode(args.mode)
    schedule = janus.build_schedule(mode, training)
    with open(args.output, "wb") as handle:
        handle.write(schedule.serialize())
    selected = janus.select_loops(mode, training)
    print(f"wrote {args.output}: {len(schedule)} rules, "
          f"{schedule.size_bytes} bytes, loops {selected} "
          f"[sha256:{digest[:16]}]")
    return 0


def _cmd_run(args) -> int:
    image = JELF.deserialize(open(args.binary, "rb").read())
    process = load(image, inputs=args.input)
    if args.schedule:
        schedule = RewriteSchedule.deserialize(
            open(args.schedule, "rb").read())
        dbm = JanusDBM(process, schedule=schedule, n_threads=args.threads,
                       scheduling=args.scheduling)
        ParallelRuntime(dbm)
        result = dbm.run()
        label = f"janus x{args.threads}"
    elif args.mode == "dbm":
        result = run_under_dbm(process)
        label = "dbm"
    else:
        result = run_native(process)
        label = "native"
    print(result.output_text)
    print(f"[{label}] {result.cycles} cycles, "
          f"{result.instructions} instructions, exit {result.exit_code}",
          file=sys.stderr)
    if result.stats:
        # Stable machine-readable form on stderr; --stats-json writes the
        # full (zeros included) counter set to a file for scripting.
        interesting = {k: v for k, v in sorted(result.stats.items()) if v}
        print("[stats] " + json.dumps(interesting, sort_keys=True),
              file=sys.stderr)
    if args.stats_json:
        payload = {
            "label": label,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "exit_code": result.exit_code,
            "stats": dict(sorted(result.stats.items())),
        }
        with open(args.stats_json, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=False)
            handle.write("\n")
    return result.exit_code


def _normalise_figure(name: str) -> str:
    """``--fig 7`` and ``--fig fig7`` both mean ``fig7``."""
    name = name.strip()
    if name.isdigit():
        return f"fig{name}"
    return name


def _cmd_figures(args) -> int:
    from repro.eval import figures, reporting
    from repro.eval.harness import EvalHarness

    cache_dir = None if args.no_cache else args.cache_dir
    harness = EvalHarness(cache_dir=cache_dir, jobs=args.jobs,
                          telemetry=args.telemetry, service=args.service)
    benchmarks = None
    if args.benchmarks:
        benchmarks = [name.strip()
                      for name in args.benchmarks.split(",") if name.strip()]
    producers = {
        "fig6": (figures.fig6_classification, reporting.render_fig6),
        "fig7": (figures.fig7_speedups, reporting.render_fig7),
        "fig8": (figures.fig8_breakdown, reporting.render_fig8),
        "fig9": (figures.fig9_scaling, reporting.render_fig9),
        "fig10": (figures.fig10_schedule_size, reporting.render_fig10),
        "fig11": (figures.fig11_compiler_comparison,
                  reporting.render_fig11),
        "fig12": (figures.fig12_opt_levels, reporting.render_fig12),
        "table1": (figures.table1_bounds_checks, reporting.render_table1),
        "table2": (lambda _h=None, benchmarks=None:
                   figures.table2_features(),
                   reporting.render_table2),
        "verify": (figures.verify_rows, reporting.render_verify),
    }
    names = list(args.which or ())
    names += [_normalise_figure(name) for name in args.fig]
    if args.verify and "verify" not in names:
        names.append("verify")
    # --verify alone means "just the verification table", not "everything".
    names = names or [n for n in sorted(producers) if n != "verify"]
    unknown = [name for name in names if name not in producers]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2

    recorder = None
    if args.telemetry:
        from repro.telemetry import aggregate, core

        recorder = core.enable(label="figures")
        if harness.telemetry_dir() is not None:
            aggregate.clear(harness.telemetry_dir())

    # Fan the needed executions out over worker processes first (no-op at
    # --jobs 1 or --no-cache); the figures below then assemble from warm
    # cache hits, bit-identical to a serial run.  Telemetry rides along:
    # workers flush recorder dumps beside the cache and the parent merges
    # them below, so figure *output* is unchanged by tracing.
    harness.warm([name for name in names if name not in ("table2", "verify")],
                 benchmarks=benchmarks)
    verify_confirmed = 0
    for name in names:
        produce, render = producers[name]
        rows = produce(harness, benchmarks=benchmarks)
        print(render(rows))
        print()
        if name == "verify":
            verify_confirmed += sum(row["confirmed_unsound"] for row in rows)

    if recorder is not None:
        from repro.telemetry import aggregate, core, export

        merged = aggregate.collect(recorder, harness.telemetry_dir())
        trace = export.write_chrome_trace(args.trace_out, merged)
        print(f"[telemetry] wrote {args.trace_out}: "
              f"{trace['meta']['spans']} spans from "
              f"{trace['meta']['processes']} processes, "
              f"{len(trace['metrics']['counters'])} counters",
              file=sys.stderr)
        core.disable()
    return 1 if verify_confirmed else 0


def _cmd_verify(args) -> int:
    from repro.verify import Severity, exit_code, verify_workload
    from repro.workloads import all_benchmarks

    names = args.workloads or all_benchmarks()
    reports = []
    for name in names:
        report = verify_workload(name, train=not args.no_train,
                                 max_iterations=args.max_iterations,
                                 max_instructions=args.max_instructions,
                                 demote=args.demote)
        reports.append(report)
        verdict = "UNSOUND" if report.confirmed else "ok"
        print(f"{name:18s} {verdict:8s} "
              f"functions={report.functions_checked} "
              f"loops={report.loops_checked} rules={report.rules_linted} "
              f"oracle={report.oracle_loops} loops/"
              f"{report.oracle_iterations} iters "
              f"warnings={len(report.by_severity(Severity.WARNING))} "
              f"errors={len(report.errors)} "
              f"unsound={len(report.confirmed)}")
        for finding in report.findings:
            if finding.severity is not Severity.INFO:
                print(f"  {finding}")
        if report.demoted_loops:
            print(f"  demoted loops: {report.demoted_loops}")
    if args.output:
        payload = {
            "workloads": [report.to_dict() for report in reports],
            "confirmed": sum(len(r.confirmed) for r in reports),
            "errors": sum(len(r.errors) for r in reports),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return exit_code(reports)


def _cmd_racecheck(args) -> int:
    from repro.verify.racecheck import (
        RaceVerdict,
        exit_code,
        racecheck_workload,
    )
    from repro.workloads import all_benchmarks

    names = args.workloads or all_benchmarks()
    modes = args.mode or ["parallel", "vector"]
    reports = []
    for name in names:
        for mode in modes:
            report = racecheck_workload(name, mode=mode)
            reports.append(report)
            d = report.to_dict()
            verdict = "ok" if report.ok else "RACE"
            print(f"{name:18s} {mode:9s} {verdict:5s} "
                  f"loops={d['loops_checked']} pairs={d['pairs_total']} "
                  f"proven={d['proven_disjoint']} guarded={d['guarded']} "
                  f"possible={d['possible_races']}")
            for pair in report.by_verdict(RaceVerdict.POSSIBLE_RACE):
                print(f"  possible race: fn {pair.function:#x} "
                      f"loop {pair.loop_id} {pair.source:#x}/{pair.sink:#x}")
    if args.output:
        payload = {
            "reports": [report.to_dict() for report in reports],
            "possible_races": sum(
                len(r.by_verdict(RaceVerdict.POSSIBLE_RACE))
                for r in reports),
            "unsound_static_loops": sum(
                len(r.unsound_static_loops) for r in reports),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return exit_code(reports)


def _cmd_modediff(args) -> int:
    """Differential check: vector/prefetch runs must match scalar exactly.

    For every bundled workload this runs the scalar DBM reference, then the
    same binary under each requested rewrite mode, and compares the
    observable results (program output bytes and exit code).  Any
    divergence is a soundness bug in that rewrite family; exit 1.
    """
    from repro.rewrite import (
        generate_prefetch_schedule,
        generate_vector_schedule,
    )
    from repro.workloads import all_benchmarks, compile_workload, get_workload

    modes = args.modes or ["vector", "prefetch"]
    names = args.workloads or all_benchmarks()
    rows = []
    failures = 0
    print(f"{'workload':18s} {'mode':9s} {'verdict':9s} {'rules':>5s} "
          f"{'ref cycles':>12s} {'mode cycles':>12s} {'ratio':>6s}")
    for name in names:
        workload = get_workload(name)
        image = compile_workload(name)
        inputs = list(workload.train_inputs)
        analysis = analyze_image(image)
        ref = run_under_dbm(load(image, inputs=inputs),
                            max_instructions=args.max_instructions)
        for mode in modes:
            if mode == "vector":
                schedule = generate_vector_schedule(analysis)
            else:
                schedule = generate_prefetch_schedule(analysis)
            result = run_under_dbm(load(image, inputs=inputs),
                                   schedule=schedule,
                                   max_instructions=args.max_instructions)
            same = (result.output_text == ref.output_text
                    and result.exit_code == ref.exit_code)
            if not same:
                failures += 1
            ratio = ref.cycles / result.cycles if result.cycles else 0.0
            verdict = "ok" if same else "DIVERGED"
            print(f"{name:18s} {mode:9s} {verdict:9s} "
                  f"{len(schedule):5d} {ref.cycles:12d} "
                  f"{result.cycles:12d} {ratio:6.3f}")
            rows.append({
                "workload": name,
                "mode": mode,
                "identical": same,
                "rules": len(schedule),
                "ref_cycles": ref.cycles,
                "mode_cycles": result.cycles,
                "ratio": ratio,
            })
    if args.output:
        payload = {"rows": rows, "failures": failures}
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if failures:
        print(f"{failures} diverging run(s)", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve(args) -> int:
    """Run the analysis daemon until a shutdown request arrives."""
    import asyncio

    from repro.service.daemon import AnalysisDaemon, DaemonConfig

    config = DaemonConfig(
        socket_path=args.socket, registry_root=args.registry,
        jobs=args.jobs, max_queue=args.max_queue,
        request_timeout=args.timeout, max_bytes=args.max_bytes,
        max_entries=args.max_entries, lint=not args.no_lint)
    daemon = AnalysisDaemon(config)
    print(f"serving on {args.socket} "
          f"(registry {args.registry}, jobs={args.jobs}, "
          f"max_queue={args.max_queue}, timeout={args.timeout}s)",
          flush=True)
    try:
        asyncio.run(daemon.serve_forever())
    except KeyboardInterrupt:
        pass
    stats = daemon.stats()
    print(f"daemon stopped: {stats['counters'].get('service.requests', 0)} "
          f"requests served", flush=True)
    return 0


def _submit_targets(args) -> list:
    """(label, image bytes, train inputs) for every submit target.

    A target is either a path to a ``.jelf`` binary or a suite workload
    name (compiled locally, exactly as the one-shot CLI would).
    """
    from repro.workloads import SUITE, compile_workload

    targets = []
    for target in args.target:
        if os.path.exists(target):
            label = os.path.splitext(os.path.basename(target))[0]
            targets.append((label, open(target, "rb").read(),
                            list(args.train_input)))
        elif target in SUITE:
            train = (list(args.train_input) or
                     list(SUITE[target].train_inputs))
            raw = compile_workload(target).serialize()
            if args.emit_binary:
                os.makedirs(args.emit_binary, exist_ok=True)
                path = os.path.join(args.emit_binary, target + ".jelf")
                with open(path, "wb") as handle:
                    handle.write(raw)
            targets.append((target, raw, train))
        else:
            raise FileNotFoundError(
                f"{target}: neither a file nor a suite workload")
    return targets


def _cmd_submit(args) -> int:
    """Client side of the daemon: submit work, query stats, shut down."""
    import time

    from repro.service.client import ServiceClient, ServiceError

    try:
        client = ServiceClient(args.socket, timeout=args.timeout)
    except OSError as exc:
        print(f"cannot reach daemon at {args.socket}: {exc}",
              file=sys.stderr)
        return 2
    with client:
        if args.ping:
            reply = client.ping()
            print(f"pong from pid {reply['pid']}")
            return 0
        if args.shutdown:
            client.shutdown()
            print("daemon shutting down")
            return 0
        if args.stats:
            reply = client.stats()
            payload = {key: reply[key] for key in
                       ("pid", "counters", "gauges", "computed",
                        "inflight", "registry") if key in reply}
            if args.output:
                with open(args.output, "w") as handle:
                    json.dump(payload, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                print(f"wrote {args.output}", file=sys.stderr)
            registry = payload.get("registry", {})
            counters = payload.get("counters", {})
            print(f"registry: {registry.get('entries', 0)} entries, "
                  f"{registry.get('total_bytes', 0)} bytes, "
                  f"hits={counters.get('service.registry.hits', 0)} "
                  f"misses={counters.get('service.registry.misses', 0)} "
                  f"merges="
                  f"{counters.get('service.single_flight_merges', 0)}")
            return 0
        try:
            targets = _submit_targets(args)
        except (FileNotFoundError, OSError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not targets:
            print("nothing to submit", file=sys.stderr)
            return 2
        failures = 0
        print(f"{'target':18s} {'op':9s} {'digest':14s} {'cached':>6s} "
              f"{'ms':>9s} result")
        for label, raw, train_inputs in targets:
            start = time.perf_counter()
            try:
                if args.op == "analyze":
                    reply = client.analyze(raw)
                    note = (f"{reply['functions']} functions, "
                            f"{reply['loops']} loops")
                elif args.op == "run":
                    reply = client.run(
                        raw, mode=args.mode, inputs=args.input,
                        threads=args.threads, train_inputs=train_inputs,
                        no_train=args.no_train)
                    note = (f"exit {reply['exit_code']}, "
                            f"{reply['cycles']} cycles")
                else:
                    reply = client.schedule(
                        raw, mode=args.mode, threads=args.threads,
                        train_inputs=train_inputs,
                        no_train=args.no_train)
                    note = (f"{reply['rules']} rules, "
                            f"loops {reply['selected_loops']}"
                            + ("" if reply["admitted"]
                               else " [lint-rejected]"))
                    if args.out_dir:
                        os.makedirs(args.out_dir, exist_ok=True)
                        path = os.path.join(args.out_dir, label + ".jrs")
                        with open(path, "wb") as handle:
                            handle.write(reply["schedule_bytes"])
            except ServiceError as exc:
                failures += 1
                print(f"{label:18s} {args.op:9s} {'-':14s} {'-':>6s} "
                      f"{'-':>9s} {exc.code}: {exc.message}")
                continue
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            cached = "warm" if reply.get("cached") else "cold"
            print(f"{label:18s} {args.op:9s} {reply['digest'][:12]:14s} "
                  f"{cached:>6s} {elapsed_ms:9.1f} {note}")
    return 1 if failures else 0


def _cmd_registry(args) -> int:
    """Offline registry maintenance: stats, gc, verify."""
    from repro.service.registry import ScheduleRegistry

    registry = ScheduleRegistry(args.registry)
    if args.action == "stats":
        report = registry.stats()
    elif args.action == "gc":
        report = registry.gc(max_bytes=args.max_bytes,
                             max_entries=args.max_entries)
    else:
        report = registry.verify()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    for key, value in sorted(report.items()):
        if key == "counters":
            continue
        print(f"{key:20s} {value}")
    if args.action == "verify" and report["quarantined"]:
        return 1
    return 0


def _cmd_trace(args) -> int:
    from repro.eval.harness import EvalHarness
    from repro.telemetry import aggregate, core, export

    recorder = core.enable(label="trace")
    harness = EvalHarness(n_threads=args.threads)
    mode = SelectionMode(args.mode)
    if mode is SelectionMode.NATIVE:
        result = harness.native(args.workload)
    else:
        result = harness.run(args.workload, mode, n_threads=args.threads)
    merged = aggregate.merge([recorder.dump()])
    trace = export.write_chrome_trace(args.output, merged)
    if args.metrics_out:
        export.write_metrics(args.metrics_out, merged)
    core.disable()
    print(f"wrote {args.output}: {trace['meta']['spans']} spans, "
          f"{len(trace['metrics']['counters'])} counters "
          f"[{mode.value}: {result.cycles} cycles, "
          f"{result.instructions} instructions]")
    return 0


_JIT_TIERS = (("fast", "jit_fast"),
              ("instrumented", "jit_inst"),
              ("superblock", "jit_super"))


def _cmd_jit_dump(args) -> int:
    from repro.workloads import compile_workload, get_workload

    try:
        workload = get_workload(args.workload)
    except KeyError:
        print(f"unknown workload: {args.workload}", file=sys.stderr)
        return 2
    target = None
    if args.pc is not None:
        try:
            target = int(args.pc, 0)
        except ValueError:
            print(f"bad --pc value: {args.pc}", file=sys.stderr)
            return 2
    image = compile_workload(args.workload)
    inputs = args.input or list(workload.train_inputs)
    process = load(image, inputs=inputs)
    cache: dict = {}
    run_native(process, max_instructions=args.max_instructions,
               block_cache=cache)
    if target is not None and target not in cache:
        print(f"no block at {target:#x} in the code cache "
              f"({len(cache)} blocks)", file=sys.stderr)
        return 1
    pcs = sorted(cache) if target is None else [target]
    shown = 0
    for pc in pcs:
        block = cache[pc]
        for tier, attr in _JIT_TIERS:
            source = getattr(getattr(block, attr), "__jit_source__", None)
            if source is None:
                continue
            shown += 1
            print(f"-- {pc:#x} [{tier}] "
                  f"{len(block.instructions)} instructions")
            print(source)
    print(f"[jit-dump] {len(cache)} blocks in code cache, "
          f"{shown} compiled runners printed", file=sys.stderr)
    return 0


def _stats_views(payload: dict) -> tuple[dict, dict, dict]:
    """(counters, gauges, span aggregates) from any telemetry JSON shape.

    Accepts an exported Chrome trace (``traceEvents`` + ``metrics``), a
    merged dump (``processes``), a single recorder dump (``events``) or a
    flat metrics file (``counters``/``gauges``).
    """
    from repro.telemetry import aggregate, export

    if "traceEvents" in payload:
        metrics = payload.get("metrics", {})
        spans: dict[str, dict] = {}
        for event in payload["traceEvents"]:
            if event.get("ph") != "X":
                continue
            entry = spans.setdefault(
                event["name"], {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
            ms = event.get("dur", 0) / 1000.0  # trace files are in us
            entry["count"] += 1
            entry["total_ms"] += ms
            entry["max_ms"] = max(entry["max_ms"], ms)
        spans = {name: {"count": entry["count"],
                        "total_ms": round(entry["total_ms"], 3),
                        "max_ms": round(entry["max_ms"], 3)}
                 for name, entry in sorted(spans.items())}
        return (metrics.get("counters", {}), metrics.get("gauges", {}),
                spans)
    if "metrics" in payload and isinstance(payload["metrics"], dict):
        # BENCH_*.json perf snapshot: span aggregates + flat metrics.
        metrics = payload["metrics"]
        return (metrics.get("counters", {}), metrics.get("gauges", {}),
                payload.get("spans", {}))
    if "events" in payload:
        payload = aggregate.merge([payload])
    if isinstance(payload.get("processes"), list):
        metrics = export.metrics(payload)
        return (metrics["counters"], metrics["gauges"],
                export.span_aggregates(payload))
    return (payload.get("counters", {}), payload.get("gauges", {}), {})


def _cmd_stats(args) -> int:
    try:
        with open(args.path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict):
        print(f"{args.path}: not a telemetry JSON object", file=sys.stderr)
        return 2
    counters, gauges, spans = _stats_views(payload)
    if counters:
        print("counters")

        def _namespace(key: str) -> str:
            # The worker shadow tier gets its own section so `repro stats`
            # surfaces recording/summarisation behaviour at a glance.
            if key.startswith("runtime.shadow."):
                return "runtime.shadow"
            return key.split(".", 1)[0]

        group = None
        for key in sorted(counters, key=lambda k: (_namespace(k), k)):
            namespace = _namespace(key)
            if namespace != group:
                group = namespace
                print(f"  [{namespace}]")
            print(f"    {key:44s} {counters[key]:>14}")
    if gauges:
        print("gauges")
        for key in sorted(gauges):
            print(f"    {key:44s} {gauges[key]:>14g}")
    if spans:
        print("spans")
        print(f"    {'name':32s} {'count':>7s} "
              f"{'total_ms':>11s} {'max_ms':>11s}")
        for name, entry in spans.items():
            print(f"    {name:32s} {entry['count']:7d} "
                  f"{entry['total_ms']:11.3f} {entry['max_ms']:11.3f}")
    if not (counters or gauges or spans):
        print("no telemetry data found")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Janus reproduction toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compile", help="compile JC source to a JELF binary")
    c.add_argument("source")
    c.add_argument("-o", "--output", required=True)
    c.add_argument("-O", "--opt-level", type=int, default=3,
                   choices=(0, 2, 3))
    c.add_argument("--personality", default="gcc", choices=("gcc", "icc"))
    c.add_argument("--mavx", action="store_true")
    c.add_argument("--parallel", action="store_true",
                   help="compiler auto-parallelisation baseline")
    c.set_defaults(func=_cmd_compile)

    a = sub.add_parser("analyze", help="static loop analysis of a binary")
    a.add_argument("binary")
    a.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the per-function analysis "
                        "pipeline (results are identical at any value)")
    a.add_argument("--mode", default="parallel",
                   choices=("parallel", "vector", "prefetch"),
                   help="also report the named rewrite family's "
                        "per-loop legality (vector) or hint plan "
                        "(prefetch)")
    a.add_argument("--digest-cache",
                   help="directory persisting image content digests "
                        "across invocations (shared keying path with "
                        "the service registry)")
    a.set_defaults(func=_cmd_analyze)

    s = sub.add_parser("schedule",
                       help="generate a parallelisation rewrite schedule")
    s.add_argument("binary")
    s.add_argument("-o", "--output", required=True)
    s.add_argument("--mode", default="janus",
                   choices=("static", "static_profile", "janus"))
    s.add_argument("--threads", type=int, default=8)
    s.add_argument("--train-input", type=int, action="append", default=[])
    s.add_argument("--no-train", action="store_true")
    s.add_argument("--digest-cache",
                   help="directory persisting image content digests "
                        "across invocations")
    s.set_defaults(func=_cmd_schedule)

    r = sub.add_parser("run", help="execute a binary")
    r.add_argument("binary")
    r.add_argument("--schedule", help="rewrite schedule (enables Janus)")
    r.add_argument("--mode", default="native", choices=("native", "dbm"))
    r.add_argument("--threads", type=int, default=8)
    r.add_argument("--scheduling", default="chunk",
                   choices=("chunk", "round_robin"),
                   help="iteration scheduling policy (paper II-E)")
    r.add_argument("--input", type=int, action="append", default=[])
    r.add_argument("--stats-json",
                   help="write cycles/instructions and the full stats "
                        "counter set to this file as JSON")
    r.set_defaults(func=_cmd_run)

    f = sub.add_parser("figures", help="regenerate paper figures/tables")
    f.add_argument("which", nargs="*",
                   help="fig6..fig12, table1, table2 (default: all)")
    f.add_argument("--cache-dir", default=".repro-cache",
                   help="directory for persisted run results")
    f.add_argument("--no-cache", action="store_true",
                   help="recompute every run; touch no on-disk cache")
    f.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                   help="worker processes for the evaluation fan-out "
                        "(default: all cores; figure output is identical "
                        "at any value; needs the on-disk cache)")
    f.add_argument("--fig", action="append", default=[],
                   help="figure to produce (e.g. 7 or fig7); may repeat, "
                        "adds to the positional list")
    f.add_argument("--benchmarks",
                   help="comma-separated workload subset (default: each "
                        "figure's full benchmark list)")
    f.add_argument("--verify", action="store_true",
                   help="also run the soundness verifier over the "
                        "benchmarks and print its summary table "
                        "(exit 1 on confirmed unsoundness)")
    f.add_argument("--telemetry", action="store_true",
                   help="record spans/counters across the run (workers "
                        "included) and write one merged Chrome trace; "
                        "figure output is unchanged")
    f.add_argument("--trace-out", default="trace.json",
                   help="Chrome trace path for --telemetry "
                        "(default: trace.json)")
    f.add_argument("--service",
                   help="socket of a running analysis daemon; schedule "
                        "generation routes through its registry "
                        "(figure output is identical either way)")
    f.set_defaults(func=_cmd_figures)

    v = sub.add_parser("verify",
                       help="soundness-check analysis results, rewrite "
                            "schedules and DOALL claims (exit 1 on "
                            "confirmed unsoundness)")
    v.add_argument("workloads", nargs="*",
                   help="suite workload names (default: all)")
    v.add_argument("-o", "--output",
                   help="write the full findings JSON to this file")
    v.add_argument("--max-iterations", type=int, default=128,
                   help="oracle replay bound per loop invocation")
    v.add_argument("--max-instructions", type=int, default=None,
                   help="instruction cap per oracle/profiling run")
    v.add_argument("--no-train", action="store_true",
                   help="skip the profiling passes; verify the untrained "
                        "pipeline's claims")
    v.add_argument("--demote", action="store_true",
                   help="demote confirmed-unsound loops "
                        "(JanusConfig.verify_demote)")
    v.set_defaults(func=_cmd_verify)

    rc = sub.add_parser("racecheck",
                        help="static race check over the loops a schedule "
                             "family parallelises: classify every residual "
                             "shared access pair as proven-disjoint, "
                             "guarded, or a possible race (exit 1 on a "
                             "possible race in a claimed STATIC_DOALL "
                             "loop)")
    rc.add_argument("workloads", nargs="*",
                    help="suite workload names (default: all)")
    rc.add_argument("--mode", action="append", default=[],
                    choices=("parallel", "vector"),
                    help="schedule families to check (default: both)")
    rc.add_argument("-o", "--output",
                    help="write the deterministic findings JSON to this "
                         "file")
    rc.set_defaults(func=_cmd_racecheck)

    md = sub.add_parser("modediff",
                        help="check that vector/prefetch rewrite modes "
                             "produce byte-identical observable results "
                             "to the scalar DBM reference (exit 1 on "
                             "divergence)")
    md.add_argument("workloads", nargs="*",
                    help="suite workload names (default: all)")
    md.add_argument("--modes", action="append", default=[],
                    choices=("vector", "prefetch"),
                    help="rewrite families to compare (default: both)")
    md.add_argument("-o", "--output",
                    help="write the per-run comparison JSON to this file")
    md.add_argument("--max-instructions", type=int,
                    default=DEFAULT_INSTRUCTION_LIMIT,
                    help="instruction cap per run")
    md.set_defaults(func=_cmd_modediff)

    sv = sub.add_parser("serve",
                        help="run the analysis daemon: a schedule "
                             "registry served over a local socket "
                             "(JSON-lines protocol)")
    sv.add_argument("--socket", default=".repro-service.sock",
                    help="unix socket path to listen on")
    sv.add_argument("--registry", default=".repro-registry",
                    help="schedule registry directory")
    sv.add_argument("--jobs", type=int, default=max(1, (os.cpu_count()
                                                        or 2) // 2),
                    help="worker processes for analysis jobs "
                         "(0 = in-process threads)")
    sv.add_argument("--max-queue", type=int, default=32,
                    help="in-flight computation bound; beyond this new "
                         "keys get a typed BUSY reply")
    sv.add_argument("--timeout", type=float, default=300.0,
                    help="per-request computation timeout in seconds")
    sv.add_argument("--max-bytes", type=int, default=None,
                    help="registry size budget (LRU eviction)")
    sv.add_argument("--max-entries", type=int, default=None,
                    help="registry entry-count budget (LRU eviction)")
    sv.add_argument("--no-lint", action="store_true",
                    help="skip the schedule linter gate on registry "
                         "admission")
    sv.set_defaults(func=_cmd_serve)

    sb = sub.add_parser("submit",
                        help="submit work to a running daemon (or ping/"
                             "stats/shutdown it)")
    sb.add_argument("target", nargs="*",
                    help="suite workload names or .jelf binary paths")
    sb.add_argument("--socket", default=".repro-service.sock")
    sb.add_argument("--op", default="schedule",
                    choices=("schedule", "analyze", "run"))
    sb.add_argument("--mode", default="janus",
                    choices=("static", "static_profile", "janus",
                             "native", "dbm_only"),
                    help="selection mode (native/dbm_only: run op only)")
    sb.add_argument("--threads", type=int, default=8)
    sb.add_argument("--train-input", type=int, action="append",
                    default=[],
                    help="training inputs (default: the workload's own)")
    sb.add_argument("--no-train", action="store_true")
    sb.add_argument("--input", type=int, action="append", default=[],
                    help="program inputs for --op run")
    sb.add_argument("--out-dir",
                    help="write returned schedules here as "
                         "<target>.jrs")
    sb.add_argument("--emit-binary",
                    help="also write compiled workload binaries here as "
                         "<target>.jelf (for differential checks "
                         "against the one-shot CLI)")
    sb.add_argument("--timeout", type=float, default=600.0,
                    help="client-side socket timeout in seconds")
    sb.add_argument("--ping", action="store_true",
                    help="liveness check only")
    sb.add_argument("--stats", action="store_true",
                    help="fetch the daemon's service.* counters/gauges")
    sb.add_argument("--shutdown", action="store_true",
                    help="ask the daemon to stop")
    sb.add_argument("-o", "--output",
                    help="write the --stats JSON payload to this file")
    sb.set_defaults(func=_cmd_submit)

    rg = sub.add_parser("registry",
                        help="offline schedule-registry maintenance")
    rg.add_argument("action", choices=("stats", "gc", "verify"))
    rg.add_argument("--registry", default=".repro-registry",
                    help="schedule registry directory")
    rg.add_argument("--max-bytes", type=int, default=None,
                    help="gc: evict LRU entries beyond this many bytes")
    rg.add_argument("--max-entries", type=int, default=None,
                    help="gc: evict LRU entries beyond this count")
    rg.add_argument("-o", "--output",
                    help="write the report JSON to this file")
    rg.set_defaults(func=_cmd_registry)

    t = sub.add_parser("trace",
                       help="run one suite workload under telemetry and "
                            "write a Chrome trace (chrome://tracing)")
    t.add_argument("workload", help="suite workload name, e.g. 470.lbm")
    t.add_argument("-o", "--output", default="trace.json")
    t.add_argument("--mode", default="janus",
                   choices=[m.value for m in SelectionMode])
    t.add_argument("--threads", type=int, default=8)
    t.add_argument("--metrics-out",
                   help="also write the flat metrics JSON here")
    t.set_defaults(func=_cmd_trace)

    jd = sub.add_parser("jit-dump",
                        help="run a suite workload natively and print the "
                             "generated-Python source of its compiled "
                             "blocks, traces and superblocks")
    jd.add_argument("workload", help="suite workload name, e.g. 470.lbm")
    jd.add_argument("--pc",
                    help="only the block at this address (0x-hex or "
                         "decimal; must be a block start)")
    jd.add_argument("--input", type=int, action="append", default=[],
                    help="program input (default: the workload's "
                         "train inputs)")
    jd.add_argument("--max-instructions", type=int,
                    default=DEFAULT_INSTRUCTION_LIMIT,
                    help="instruction cap for the warm-up run")
    jd.set_defaults(func=_cmd_jit_dump)

    st = sub.add_parser("stats",
                        help="summarise a telemetry JSON (trace, metrics "
                             "or recorder dump) as a table")
    st.add_argument("path")
    st.set_defaults(func=_cmd_stats)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
