"""A single word-based software transaction."""

from __future__ import annotations

from dataclasses import dataclass, field


class TxAbort(Exception):
    """Raised when validation fails and the transaction must re-execute."""


@dataclass
class Transaction:
    """Buffered reads and writes of one speculative region.

    * Reads record ``address -> value seen`` the first time an address is
      read (later reads hit the write buffer or the read log).
    * Writes are buffered, never touching shared memory until commit.
    * ``validate`` re-checks every logged read against shared memory —
      lazy *value-based* checking: a conflicting write that restored the
      same value does not abort (paper: "lazy value-based conflict
      checking, similar to JudoSTM").
    """

    memory: object  # shared Memory
    thread_id: int = 0
    read_log: dict[int, int] = field(default_factory=dict)
    write_buffer: dict[int, int] = field(default_factory=dict)
    # Machine-context checkpoint taken at TX_START (register list copies).
    checkpoint: object = None

    def read(self, addr: int) -> int:
        if addr in self.write_buffer:
            return self.write_buffer[addr]
        if addr in self.read_log:
            return self.read_log[addr]
        value = self.memory.read(addr)
        self.read_log[addr] = value
        return value

    def write(self, addr: int, value: int) -> None:
        self.write_buffer[addr] = value

    @property
    def n_reads(self) -> int:
        return len(self.read_log)

    @property
    def n_writes(self) -> int:
        return len(self.write_buffer)

    def validate(self) -> bool:
        """True if every read value still matches shared memory."""
        read = self.memory.read
        return all(read(addr) == value
                   for addr, value in self.read_log.items())

    def commit(self) -> None:
        """Write back the buffer (caller must have validated)."""
        write = self.memory.write
        for addr, value in self.write_buffer.items():
            write(addr, value)

    def reset(self) -> None:
        self.read_log.clear()
        self.write_buffer.clear()
