"""Just-in-time software transactional memory (paper section II-E2).

A light-weight word-based STM with lazy, value-based conflict checking in
the style of JudoSTM: transactions buffer writes, record the values they
read, validate reads against shared memory at commit time, and commit
buffered writes in thread order.  There are no static STM API routines —
the DBM's ``TX_START``/``TX_FINISH`` handlers flip the executing thread
into transactional mode and the interpreter redirects heap and
out-of-frame-stack accesses through the active transaction.
"""

from repro.stm.transaction import Transaction, TxAbort
from repro.stm.stm import STMManager, STMStats

__all__ = ["Transaction", "TxAbort", "STMManager", "STMStats"]
