"""STM management: per-thread transactions, commit order, abort modelling.

The deterministic simulator executes pool threads in commit order, so a
transaction's validation against shared memory reproduces exactly what the
oldest-thread-commits-first protocol of the paper produces.  Conflicts with
*later*-committing threads (which on real hardware could have raced ahead)
are detected against the invocation's cross-thread write sets and modelled
as an abort + non-speculative re-execution, whose cost is charged but whose
result equals the committed order — "execution rolls back to the checkpoint
and the code is re-executed, which will succeed because the thread is now
the oldest" (paper section II-E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.costs import CostModel
from repro.stm.transaction import Transaction
from repro.telemetry.core import RegistryView, get_recorder


class STMStats(RegistryView):
    """Counters reported by experiments (paper section III-B).

    Stored in a :class:`~repro.telemetry.core.MetricRegistry` under
    ``stm.*`` keys; the attributes are property views so call sites are
    unchanged.  :class:`~repro.dbm.modifier.JanusDBM` passes its own
    registry in, putting STM counters beside ``runtime.*`` and ``jit.*``.
    """

    _NAMESPACE = "stm"
    _FIELDS = ("transactions", "reads", "writes", "aborts",
               "commit_cycles")


@dataclass
class STMManager:
    """Creates, validates and commits transactions for the parallel runtime."""

    memory: object
    cost: CostModel
    stats: STMStats = field(default_factory=STMStats)

    def begin(self, thread_id: int, checkpoint) -> Transaction:
        self.stats.transactions += 1
        return Transaction(memory=self.memory, thread_id=thread_id,
                           checkpoint=checkpoint)

    def finish(self, tx: Transaction, ctx,
               conflicts_with_later: bool = False) -> int:
        """Validate and commit; returns the cycle cost charged.

        ``conflicts_with_later`` models a read that a younger thread's
        write would have raced with: abort, charge the retry, then commit
        (the retry runs non-speculatively as the oldest thread).
        """
        cost = self.cost
        cycles = cost.stm_start_cycles
        cycles += tx.n_reads * cost.stm_read_cycles
        cycles += tx.n_writes * cost.stm_write_cycles
        cycles += tx.n_reads * cost.stm_validate_entry_cycles
        cycles += tx.n_writes * cost.stm_commit_entry_cycles
        aborted = (not tx.validate()) or conflicts_with_later
        if aborted:
            self.stats.aborts += 1
            recorder = get_recorder()
            if recorder.enabled:
                recorder.instant("stm.abort", cat="stm",
                                 thread=tx.thread_id, reads=tx.n_reads,
                                 writes=tx.n_writes)
            cycles += cost.stm_abort_cycles
            # Re-execution as the oldest thread: charge roughly the same
            # access work again (reads + writes, non-speculative).
            cycles += tx.n_reads * cost.stm_read_cycles
            cycles += tx.n_writes * cost.stm_write_cycles
        tx.commit()
        self.stats.reads += tx.n_reads
        self.stats.writes += tx.n_writes
        self.stats.commit_cycles += cycles
        ctx.cycles += cycles
        return cycles
