"""The Janus facade: analyse → (train) → select → parallelise → run."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis import LoopCategory, analyze_image
from repro.analysis.analyzer import BinaryAnalysis
from repro.analysis.classify import LoopAnalysisResult
from repro.dbm.executor import ExecutionResult, run_native
from repro.dbm.modifier import JanusDBM, run_under_dbm
from repro.dbm.runtime import ParallelRuntime
from repro.isa.costs import DEFAULT_COST_MODEL, CostModel
from repro.jbin.image import JELF
from repro.jbin.loader import load
from repro.profiling import ProfileResult, run_profiling
from repro.rewrite import (
    generate_parallel_schedule,
    generate_prefetch_schedule,
    generate_profile_schedule,
    generate_vector_schedule,
    vector_candidates,
)
from repro.rewrite.gen_profile import COVERAGE_STAGE, DEPENDENCE_STAGE
from repro.rewrite.schedule import RewriteSchedule
from repro.telemetry.core import get_recorder


class SelectionMode(enum.Enum):
    """The configurations of paper Fig. 7."""

    NATIVE = "native"                    # no DBM at all
    DBM_ONLY = "dbm_only"                # DynamoRIO overhead bar
    STATIC = "static"                    # Statically-Driven
    STATIC_PROFILE = "static_profile"    # Statically-Driven + Profile
    JANUS = "janus"                      # + runtime checks / STM (full)


@dataclass
class JanusConfig:
    """Tunables for one Janus invocation."""

    n_threads: int = 8
    # Loops below this fraction of dynamic instructions are filtered out
    # by the training stage (paper II-C: "low coverage loops").
    coverage_threshold: float = 0.05
    # Loops averaging fewer iterations per invocation than this are not
    # profitable (paper III-B: loops "with a high invocation count where
    # overheads of parallelisation out-weigh the benefits").
    min_average_trips: float = 16.0
    cost_model: CostModel = field(
        default_factory=lambda: DEFAULT_COST_MODEL.copy())
    strict: bool = True
    # Iteration scheduling policy: "chunk" (paper default) or
    # "round_robin" with rr_block-sized blocks (paper II-E alternative).
    scheduling: str = "chunk"
    rr_block: int = 8
    # Worker shadow-access tracking: "compiled" (generated shadow runners
    # plus stride descriptors; workers keep the fast/superblock JIT
    # tiers) or "hook" (legacy per-access callback, reference semantics).
    shadow_mode: str = "compiled"
    max_instructions: int = 500_000_000
    # Iterations a self-loop trace or superblock may spin inside compiled
    # code before bailing back to the dispatcher (bounds how late an
    # instruction limit is detected; see repro.dbm.jit.TRACE_BUDGET).
    trace_budget: int = 4096
    # Worker processes for the per-function static-analysis pipeline
    # (1 = serial; results are identical either way).
    analysis_jobs: int = 1
    # When the verification oracle (repro verify) confirms a claimed-DOALL
    # loop carries a cross-iteration dependence, demote its category so the
    # selector can no longer parallelise it.
    verify_demote: bool = False
    # Rewrite-rule family emitted by build_schedule: "parallel" (thread-level
    # DOALL, the paper's main path), "vector" (packed-lane widening of scalar
    # DOALL bodies) or "prefetch" (stride-ahead cache hints).
    mode: str = "parallel"


@dataclass
class TrainingData:
    """Results of the optional training stage (paper Fig. 1a, left)."""

    coverage: ProfileResult
    dependence: ProfileResult | None = None


class Janus:
    """Automatic parallelisation of one binary, no user intervention."""

    def __init__(self, image: JELF, config: JanusConfig | None = None) -> None:
        self.image = image
        self.config = config or JanusConfig()
        self._analysis: BinaryAnalysis | None = None

    # -- stage 1: static analysis -------------------------------------------

    @property
    def analysis(self) -> BinaryAnalysis:
        if self._analysis is None:
            with get_recorder().span("janus.analysis", cat="analysis",
                                     jobs=self.config.analysis_jobs) as span:
                self._analysis = analyze_image(self.image,
                                               jobs=self.config.analysis_jobs)
                span.set(functions=len(self._analysis.functions),
                         loops=len(self._analysis.loops))
        return self._analysis

    # -- stage 2: training (optional) ------------------------------------------

    def train(self, train_inputs: list[int] | None = None) -> TrainingData:
        """Run the two profiling passes with training inputs."""
        with get_recorder().span("janus.train", cat="profiling") as span:
            training = self._train(train_inputs)
            span.set(dependence_pass=training.dependence is not None)
        return training

    def _train(self, train_inputs: list[int] | None) -> TrainingData:
        analysis = self.analysis
        coverage_schedule = generate_profile_schedule(analysis,
                                                      stage=COVERAGE_STAGE)
        process = load(self.image, inputs=train_inputs)
        coverage, _ = run_profiling(
            process, coverage_schedule,
            cost_model=self.config.cost_model.copy(),
            max_instructions=self.config.max_instructions)

        # Dependence profiling only on loops that survived the coverage
        # filter and still need the C/D split.
        surviving = coverage.loops_above_coverage(
            self.config.coverage_threshold)
        needs_dependence = [
            loop_id for loop_id in surviving
            if analysis.loop(loop_id).category is LoopCategory.DYNAMIC_DOALL
        ]
        dependence = None
        if needs_dependence:
            dependence_schedule = generate_profile_schedule(
                analysis, stage=DEPENDENCE_STAGE, loop_ids=needs_dependence)
            process = load(self.image, inputs=train_inputs)
            dependence, _ = run_profiling(
                process, dependence_schedule,
                cost_model=self.config.cost_model.copy(),
                max_instructions=self.config.max_instructions)
            for loop_id in needs_dependence:
                profile = dependence.loops.get(loop_id)
                if profile is not None:
                    analysis.loop(loop_id).apply_dependence_profile(
                        profile.has_dependence)
        for loop_id, profile in coverage.loops.items():
            analysis.loop(loop_id).coverage_fraction = \
                coverage.coverage(loop_id)
        return TrainingData(coverage=coverage, dependence=dependence)

    # -- stage 3: loop selection ---------------------------------------------------

    def select_loops(self, mode: SelectionMode,
                     training: TrainingData | None = None) -> list[int]:
        """Pick at most one loop per nest (paper II-D, selection policy)."""
        analysis = self.analysis
        allowed = {LoopCategory.STATIC_DOALL}
        if mode is SelectionMode.JANUS:
            allowed.add(LoopCategory.DYNAMIC_DOALL)

        def qualifies(result: LoopAnalysisResult) -> bool:
            if result.category not in allowed:
                return False
            if not result.is_parallelisable:
                return False
            if result.loop.preheader is None:
                return False
            if mode in (SelectionMode.STATIC_PROFILE, SelectionMode.JANUS) \
                    and training is not None:
                coverage = training.coverage.coverage(result.loop_id)
                if coverage < self.config.coverage_threshold:
                    return False
                profile = training.coverage.loops.get(result.loop_id)
                if profile is not None and profile.invocations:
                    average = profile.iterations / profile.invocations
                    if average < self.config.min_average_trips:
                        return False
            return True

        by_loop = {result.loop: result for result in analysis.loops}
        selected: list[int] = []
        for fa in analysis.functions.values():
            roots = [loop for loop in fa.loops if loop.parent is None]
            for root in roots:
                selected.extend(
                    self._select_in_subtree(root, by_loop, qualifies))
        return sorted(selected)

    def _select_in_subtree(self, loop, by_loop, qualifies) -> list[int]:
        result = by_loop.get(loop)
        if result is not None and qualifies(result):
            return [result.loop_id]
        chosen: list[int] = []
        for child in loop.children:
            chosen.extend(self._select_in_subtree(child, by_loop, qualifies))
        return chosen

    # -- stage 4: schedule generation ------------------------------------------------

    def build_schedule(self, mode: SelectionMode,
                       training: TrainingData | None = None
                       ) -> RewriteSchedule:
        family = self.config.mode
        if family not in ("parallel", "vector", "prefetch"):
            raise ValueError(f"unknown rewrite mode {family!r}")
        with get_recorder().span("janus.build_schedule", cat="rewrite",
                                 mode=mode.value, family=family) as span:
            selected = self.select_loops(mode, training)
            span.set(selected_loops=len(selected))
            if family == "vector":
                legal = {v.loop_id
                         for v in vector_candidates(self.analysis) if v.ok}
                return generate_vector_schedule(
                    self.analysis, [i for i in selected if i in legal])
            if family == "prefetch":
                return generate_prefetch_schedule(
                    self.analysis, selected_loop_ids=selected or None,
                    distance=self.config.cost_model
                    .prefetch_distance_iterations)
            return generate_parallel_schedule(self.analysis, selected)

    # -- stage 5: execution -------------------------------------------------------------

    def run(self, mode: SelectionMode, inputs: list[int] | None = None,
            training: TrainingData | None = None,
            n_threads: int | None = None,
            schedule: RewriteSchedule | None = None) -> ExecutionResult:
        """Execute the binary in one of the Fig. 7 configurations.

        ``schedule`` short-circuits stage 4 with a precomputed rewrite
        schedule (e.g. one fetched from a running analysis daemon's
        registry); schedule generation is deterministic, so a served
        schedule produces the same execution as a locally-built one.
        """
        process = load(self.image, inputs=inputs)
        threads = n_threads if n_threads is not None \
            else self.config.n_threads
        cost = self.config.cost_model.copy()
        limit = self.config.max_instructions
        if mode is SelectionMode.NATIVE:
            return run_native(process, max_instructions=limit)
        if mode is SelectionMode.DBM_ONLY:
            return run_under_dbm(process, cost_model=cost,
                                 max_instructions=limit)
        if schedule is None:
            schedule = self.build_schedule(mode, training)
        dbm = JanusDBM(process, schedule=schedule, cost_model=cost,
                       n_threads=threads, strict=self.config.strict,
                       scheduling=self.config.scheduling,
                       rr_block=self.config.rr_block,
                       trace_budget=self.config.trace_budget,
                       shadow_mode=self.config.shadow_mode)
        ParallelRuntime(dbm)
        return dbm.run(max_instructions=limit)
