"""The end-to-end Janus pipeline (paper Fig. 1a).

``Janus`` wires the whole system together: static analysis, the optional
two-pass training stage (coverage profiling, then dependence profiling),
loop selection, parallelisation-schedule generation, and execution under
the DBM with the parallel runtime.
"""

from repro.pipeline.janus import Janus, JanusConfig, SelectionMode

__all__ = ["Janus", "JanusConfig", "SelectionMode"]
