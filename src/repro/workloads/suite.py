"""Workload registry and compilation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import resources

from repro.jbin.image import JELF
from repro.jcc import CompileOptions, compile_source


@dataclass(frozen=True)
class Workload:
    """One synthetic SPEC-like benchmark."""

    name: str          # SPEC-style name, e.g. "470.lbm"
    program: str       # programs/<program>.jc
    language: str      # cosmetic: the SPEC benchmark's source language
    train_inputs: tuple
    ref_inputs: tuple
    description: str = ""

    @property
    def short_name(self) -> str:
        return self.program


def _w(name, program, language, train, ref, description=""):
    return Workload(name=name, program=program, language=language,
                    train_inputs=tuple(train), ref_inputs=tuple(ref),
                    description=description)


# The nine benchmarks the paper parallelises (Figs. 7-12, Tables I).
FIG7_BENCHMARKS = (
    "410.bwaves", "433.milc", "436.cactusADM", "437.leslie3d",
    "459.GemsFDTD", "462.libquantum", "464.h264ref", "470.lbm",
    "482.sphinx3",
)

SUITE: dict[str, Workload] = {w.name: w for w in (
    # -- the Fig. 7 set ----------------------------------------------------
    _w("410.bwaves", "bwaves", "Fortran", train=(1,), ref=(3,),
       description="CFD; hot loop calls pow@plt (STM), 1 bounds check"),
    _w("433.milc", "milc", "C", train=(2,), ref=(10,),
       description="lattice QCD; many pointer bases, init/finish bound"),
    _w("436.cactusADM", "cactusadm", "C", train=(1,), ref=(4,),
       description="numerical relativity; icc -parallel vectorises this"),
    _w("437.leslie3d", "leslie3d", "Fortran", train=(3,), ref=(12,),
       description="LES; DOALL loops too short to profit"),
    _w("459.GemsFDTD", "gemsfdtd", "Fortran", train=(1,), ref=(3,),
       description="FDTD; pointer fields need many bounds checks"),
    _w("462.libquantum", "libquantum", "C", train=(2,), ref=(10,),
       description="quantum simulation; best case ~6x"),
    _w("464.h264ref", "h264ref", "C", train=(1,), ref=(3,),
       description="video encoder; DBM-hostile call/return traffic"),
    _w("470.lbm", "lbm", "C", train=(2,), ref=(8,),
       description="lattice Boltzmann; ~98% in one stencil"),
    _w("482.sphinx3", "sphinx3", "C", train=(2,), ref=(5,),
       description="speech recognition; Amdahl-limited ~1.3x"),
    # -- the rest of the Fig. 6 suite ---------------------------------------
    _w("400.perlbench", "perlbench", "C", train=(2,), ref=(4,),
       description="interpreter dispatch; incompatible-heavy"),
    _w("401.bzip2", "bzip2", "C", train=(2,), ref=(4,),
       description="compression; carried state everywhere"),
    _w("403.gcc", "gcc_bench", "C", train=(1,), ref=(2,),
       description="compiler; irregular control flow"),
    _w("429.mcf", "mcf", "C", train=(2,), ref=(4,),
       description="network simplex; pointer chasing"),
    _w("434.zeusmp", "zeusmp", "Fortran", train=(1,), ref=(2,),
       description="astro CFD; some DOALL below the 20% line"),
    _w("435.gromacs", "gromacs", "C/Fortran", train=(1,), ref=(2,),
       description="molecular dynamics; mixed"),
    _w("444.namd", "namd", "C++", train=(1,), ref=(2,),
       description="molecular dynamics; unrecognisable iterators"),
    _w("445.gobmk", "gobmk", "C", train=(1,), ref=(2,),
       description="go; recursive search and rand"),
    _w("447.dealII", "dealii", "C++", train=(1,), ref=(2,),
       description="FEM with STL-style control flow"),
    _w("450.soplex", "soplex", "C++", train=(1,), ref=(2,),
       description="LP simplex; pivot recurrences"),
    _w("453.povray", "povray", "C++", train=(1,), ref=(2,),
       description="ray tracer; rand and virtual dispatch"),
    _w("454.calculix", "calculix", "C/Fortran", train=(1,), ref=(2,),
       description="structural FEM; mixed categories"),
    _w("456.hmmer", "hmmer", "C", train=(1,), ref=(2,),
       description="HMM dynamic programming recurrences"),
    _w("458.sjeng", "sjeng", "C", train=(1,), ref=(2,),
       description="chess; search with carried alpha/beta"),
    _w("473.astar", "astar", "C++", train=(1,), ref=(2,),
       description="pathfinding; data-dependent worklists"),
    _w("483.xalancbmk", "xalancbmk", "C++", train=(1,), ref=(2,),
       description="XSLT; DOALL loops exist but ~1% of time"),
)}


def all_benchmarks() -> list[str]:
    return sorted(SUITE)


def get_workload(name: str) -> Workload:
    return SUITE[name]


def workload_source(workload: Workload) -> str:
    path = resources.files("repro.workloads") / "programs" \
        / f"{workload.program}.jc"
    return path.read_text()


# Compiled-image cache: (name, options signature) -> image.
_IMAGE_CACHE: dict[tuple, JELF] = {}


def compile_workload(name: str,
                     options: CompileOptions | None = None) -> JELF:
    """Compile a workload (cached per option set)."""
    options = options or CompileOptions()
    key = (name, options.opt_level, options.personality, options.mavx,
           options.parallel, options.parallel_threads)
    image = _IMAGE_CACHE.get(key)
    if image is None:
        workload = get_workload(name)
        image = compile_source(workload_source(workload), options)
        _IMAGE_CACHE[key] = image
    return image
