"""The synthetic SPEC CPU2006-like workload suite (DESIGN.md section 2).

Each workload is a JC program named after a SPEC CPU2006 benchmark and
engineered to reproduce that benchmark's *loop-category profile* from paper
Fig. 6 and its behaviour in the evaluation figures.  The suite registry
carries the metadata the experiment harness needs: training and reference
inputs and which benchmarks belong to the parallelisable Fig. 7 set.
"""

from repro.workloads.suite import (
    FIG7_BENCHMARKS,
    SUITE,
    Workload,
    all_benchmarks,
    compile_workload,
    get_workload,
)

__all__ = [
    "FIG7_BENCHMARKS",
    "SUITE",
    "Workload",
    "all_benchmarks",
    "compile_workload",
    "get_workload",
]
