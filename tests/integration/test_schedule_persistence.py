"""The static/dynamic separation artifact: schedules survive the disk.

In the paper's workflow the analyser and the DBM are separate programs
communicating only through the rewrite-schedule *file*.  These tests
enforce that separation: a schedule serialised to bytes and reloaded in a
fresh process drives an identical parallel execution, and a schedule from
a different binary is refused.
"""

import pytest

from repro.dbm.executor import run_native
from repro.dbm.modifier import JanusDBM
from repro.dbm.runtime import ParallelRuntime
from repro.jbin.image import JELF
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode
from repro.rewrite.schedule import RewriteSchedule

SOURCE = """
int n = 600;
double a[600];
double b[600];

int main() {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i++) { b[i] = 0.5 * i; }
    for (i = 0; i < n; i++) { a[i] = b[i] * 3.0 + 1.0; }
    for (i = 0; i < n; i++) { s += a[i]; }
    print_double(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """(binary bytes, schedule bytes) written by the "static" side."""
    image = compile_source(SOURCE, CompileOptions(opt_level=3))
    janus = Janus(image, JanusConfig(n_threads=8, coverage_threshold=0.0))
    training = janus.train()
    schedule = janus.build_schedule(SelectionMode.JANUS, training)
    directory = tmp_path_factory.mktemp("artefacts")
    binary_path = directory / "app.jelf"
    schedule_path = directory / "app.jrs"
    binary_path.write_bytes(image.serialize())
    schedule_path.write_bytes(schedule.serialize())
    return binary_path, schedule_path


def test_reloaded_schedule_drives_identical_execution(artefacts):
    binary_path, schedule_path = artefacts
    # The "dynamic" side: nothing but the two files.
    image = JELF.deserialize(binary_path.read_bytes())
    schedule = RewriteSchedule.deserialize(schedule_path.read_bytes())
    assert schedule.verify_against(image)

    native = run_native(load(image))
    dbm = JanusDBM(load(image), schedule=schedule, n_threads=8)
    ParallelRuntime(dbm)
    result = dbm.run()
    assert result.outputs == pytest.approx(native.outputs) or _close(
        result.outputs, native.outputs)
    assert result.stats["loop_invocations_parallel"] >= 1
    assert result.cycles < native.cycles


def test_schedule_refused_for_wrong_binary(artefacts):
    _, schedule_path = artefacts
    schedule = RewriteSchedule.deserialize(schedule_path.read_bytes())
    other = compile_source("int main() { return 0; }", CompileOptions())
    with pytest.raises(ValueError, match="checksum"):
        JanusDBM(load(other), schedule=schedule)


def test_schedule_bytes_are_deterministic(artefacts):
    binary_path, schedule_path = artefacts
    image = JELF.deserialize(binary_path.read_bytes())
    janus = Janus(image, JanusConfig(n_threads=8, coverage_threshold=0.0))
    training = janus.train()
    regenerated = janus.build_schedule(SelectionMode.JANUS, training)
    assert regenerated.serialize() == schedule_path.read_bytes()


def _close(a, b):
    return len(a) == len(b) and all(
        k1 == k2 and abs(v1 - v2) <= 1e-9 * max(1.0, abs(v1))
        for (k1, v1), (k2, v2) in zip(a, b))
