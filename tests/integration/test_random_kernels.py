"""Property-based end-to-end stress test: random kernels vs the oracle.

Hypothesis generates random array kernels (assignments over a[i]/b[i]/c[i],
float constants, an invariant scalar, and optionally a reduction), picks a
compiler personality and optimisation level, runs the full Janus pipeline,
and asserts observable equivalence with native execution at several thread
counts.  Any divergence would indicate a real bug somewhere in the
analyser, schedule generation, or runtime.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dbm.executor import run_native
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode

ARRAYS = ("a", "b", "c")

leaf = st.one_of(
    st.sampled_from([f"{arr}[i]" for arr in ARRAYS]),
    st.sampled_from(["0.5", "1.25", "2.0", "s"]),
)


def combine(left, op, right):
    return f"({left} {op} {right})"


exprs = st.recursive(
    leaf,
    lambda children: st.builds(combine, children,
                               st.sampled_from(["+", "-", "*"]), children),
    max_leaves=5,
)

statements = st.lists(
    st.tuples(st.sampled_from(ARRAYS[:2]),  # write only a or b
              st.sampled_from(["=", "+="]),
              exprs),
    min_size=1, max_size=3,
)

configs = st.sampled_from([
    CompileOptions(opt_level=2),
    CompileOptions(opt_level=3),
    CompileOptions(opt_level=3, mavx=True),
    CompileOptions(opt_level=3, personality="icc"),
])


def build_source(body_statements, with_reduction):
    body = "\n        ".join(
        f"{target}[i] {op} {expr};" for target, op, expr in body_statements)
    reduction = "total += a[i] + b[i];" if with_reduction else ""
    return f"""
    double a[256];
    double b[256];
    double c[256];
    double s = 1.5;

    int main() {{
        int i;
        double total = 0.0;
        for (i = 0; i < 256; i++) {{
            a[i] = 0.125 * i;
            b[i] = 8.0 - 0.0625 * i;
            c[i] = 0.25 * (i % 7);
        }}
        for (i = 0; i < 256; i++) {{
            {body}
            {reduction}
        }}
        print_double(a[100] + b[77] + c[3]);
        print_double(total);
        return 0;
    }}
    """


def outputs_close(a, b):
    if len(a) != len(b):
        return False
    for (k1, v1), (k2, v2) in zip(a, b):
        if k1 != k2:
            return False
        if not math.isclose(v1, v2, rel_tol=1e-9, abs_tol=1e-9):
            return False
    return True


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(body=statements, with_reduction=st.booleans(), options=configs,
       threads=st.sampled_from([2, 4, 8]))
def test_random_kernel_oracle(body, with_reduction, options, threads):
    source = build_source(body, with_reduction)
    image = compile_source(source, options)
    native = run_native(load(image))
    janus = Janus(image, JanusConfig(n_threads=threads,
                                     coverage_threshold=0.0))
    training = janus.train()
    result = janus.run(SelectionMode.JANUS, training=training)
    assert outputs_close(native.outputs, result.outputs), (
        source, native.outputs, result.outputs)
    assert result.exit_code == native.exit_code


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(body=statements)
def test_random_kernel_all_modes_agree(body):
    """Every selection mode preserves observable behaviour."""
    source = build_source(body, with_reduction=False)
    image = compile_source(source, CompileOptions(opt_level=2))
    native = run_native(load(image))
    janus = Janus(image, JanusConfig(n_threads=4, coverage_threshold=0.0))
    training = janus.train()
    for mode in (SelectionMode.DBM_ONLY, SelectionMode.STATIC,
                 SelectionMode.STATIC_PROFILE, SelectionMode.JANUS):
        result = janus.run(mode, training=training)
        assert outputs_close(native.outputs, result.outputs), (source, mode)
