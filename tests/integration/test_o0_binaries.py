"""End-to-end parallelisation of unoptimised (-O0) binaries.

At -O0 every local, including the loop iterator, lives in a stack slot:
this exercises the analyser's stack-slot SSA variables, slot-based
induction recognition, and the runtime's slot-iterator chunk setup — a
completely different code shape from the register loops of -O2/-O3.
"""

import pytest

from repro.analysis import LoopCategory
from repro.dbm.executor import run_native
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode

SOURCE = """
int n = 600;
double a[600];
double b[600];

int main() {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i++) { b[i] = 0.25 * i; }
    for (i = 0; i < n; i++) { a[i] = b[i] * 2.0 + 1.0; }
    for (i = 0; i < n; i++) { s += a[i]; }
    print_double(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def o0_image():
    return compile_source(SOURCE, CompileOptions(opt_level=0))


def test_iterator_lives_on_the_stack(o0_image):
    janus = Janus(o0_image, JanusConfig(n_threads=4))
    slot_iterated = [
        result for result in janus.analysis.loops
        if result.induction is not None
        and result.induction.iterator is not None
        and isinstance(result.induction.iterator.iv.var, tuple)
    ]
    assert slot_iterated, "expected at least one stack-slot iterator at -O0"


def test_o0_loops_still_classified(o0_image):
    janus = Janus(o0_image, JanusConfig(n_threads=4))
    categories = {l.category for l in janus.analysis.loops}
    assert LoopCategory.INCOMPATIBLE not in categories or len(
        [l for l in janus.analysis.loops
         if l.category is not LoopCategory.INCOMPATIBLE]) >= 2


def test_o0_parallel_oracle(o0_image):
    native = run_native(load(o0_image))
    janus = Janus(o0_image, JanusConfig(n_threads=4,
                                        coverage_threshold=0.0))
    training = janus.train()
    result = janus.run(SelectionMode.JANUS, training=training)
    assert len(result.outputs) == len(native.outputs)
    (k1, v1), = native.outputs
    (k2, v2), = result.outputs
    assert k1 == k2
    assert abs(v1 - v2) <= 1e-9 * max(1.0, abs(v1))
    assert result.stats["loop_invocations_parallel"] >= 1


def test_o0_and_o3_same_answer():
    o0 = compile_source(SOURCE, CompileOptions(opt_level=0))
    o3 = compile_source(SOURCE, CompileOptions(opt_level=3))
    r0 = run_native(load(o0))
    r3 = run_native(load(o3))
    assert r0.outputs == pytest.approx(r3.outputs) or \
        abs(r0.outputs[0][1] - r3.outputs[0][1]) < 1e-9
