"""Differential sweep: the compiled shadow tier vs the legacy hook path.

The compiled tier (PR 8) replaces per-access shadow callbacks with
generated shadow runners, stride-descriptor summarisation and deferred
chunk-end detection.  Its contract is *observational equivalence*: for
every parallelised workload and both scheduling policies, the shadow
sets, line counters, conflict verdicts, outputs, final memory and every
runtime counter outside the JIT tier must be identical to hook mode.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbm.executor import run_native
from repro.dbm.jit import JITStats
from repro.dbm.runtime import ParallelRuntime, WorkerState
from repro.dbm.shadow import (
    ShadowSink,
    ShadowView,
    StrideDescriptor,
    views_may_conflict,
)
from repro.dbm.superblock import SuperblockStats
from repro.jbin.loader import load
from repro.pipeline import Janus, JanusConfig, SelectionMode
from repro.workloads import FIG7_BENCHMARKS, compile_workload, get_workload

# JIT-tier counters legitimately differ between modes (the whole point
# is that workers compile different runner variants); everything else —
# the runtime.*, stm.* and check counters — must match exactly.
TIER_KEYS = set(JITStats._FIELDS) \
    | {f"superblock_{name}" for name in SuperblockStats._FIELDS}

WORD = 8


def _capture_detect(captures):
    """Wrap _detect_violations to snapshot every worker's expanded view."""
    original = ParallelRuntime._detect_violations

    def wrapper(self, workers):
        snap = []
        for worker in workers:
            view = worker.shadow_view()
            snap.append((worker.thread_id,
                         sorted(view.reads()),
                         sorted(view.writes()),
                         dict(view.line_counts())))
        captures.append(snap)
        return original(self, workers)

    return original, wrapper


def run_mode(image, workload, training, shadow_mode, scheduling):
    config = JanusConfig(n_threads=4, shadow_mode=shadow_mode,
                         scheduling=scheduling)
    janus = Janus(image, config)
    captures: list = []
    original, wrapper = _capture_detect(captures)
    ParallelRuntime._detect_violations = wrapper
    try:
        result = janus.run(SelectionMode.JANUS,
                           inputs=list(workload.train_inputs),
                           training=training)
    finally:
        ParallelRuntime._detect_violations = original
    return result, captures


@pytest.fixture(scope="module")
def trained():
    cache = {}

    def get(name):
        if name not in cache:
            workload = get_workload(name)
            image = compile_workload(name)
            janus = Janus(image, JanusConfig(n_threads=4))
            training = janus.train(train_inputs=list(workload.train_inputs))
            cache[name] = (workload, image, training)
        return cache[name]

    return get


@pytest.mark.parametrize("scheduling", ["chunk", "round_robin"])
@pytest.mark.parametrize("name", FIG7_BENCHMARKS)
def test_compiled_matches_hook(trained, name, scheduling):
    workload, image, training = trained(name)
    hook, hook_caps = run_mode(image, workload, training, "hook", scheduling)
    comp, comp_caps = run_mode(image, workload, training, "compiled",
                               scheduling)
    assert comp.outputs == hook.outputs
    assert comp.exit_code == hook.exit_code
    assert comp.data_snapshot() == hook.data_snapshot()
    # Identical shadow sets, per invocation, per worker.
    assert comp_caps == hook_caps
    assert hook_caps, f"{name} never entered parallel detection"
    # Identical counters outside the JIT tier.
    hook_stats = {k: v for k, v in hook.stats.items() if k not in TIER_KEYS}
    comp_stats = {k: v for k, v in comp.stats.items() if k not in TIER_KEYS}
    assert comp_stats == hook_stats
    # Outputs also match a native run (the oracle's base truth).
    native = run_native(load(image, inputs=list(workload.train_inputs)))
    assert comp.exit_code == native.exit_code


def test_workers_reach_superblock_tier():
    """Acceptance: compiled-mode workers execute on the superblock tier."""
    from repro.dbm.modifier import JanusDBM

    name = "462.libquantum"
    workload = get_workload(name)
    image = compile_workload(name)
    janus = Janus(image, JanusConfig(n_threads=4))
    training = janus.train(train_inputs=list(workload.train_inputs))
    schedule = janus.build_schedule(SelectionMode.JANUS, training)
    dbm = JanusDBM(load(image, inputs=list(workload.train_inputs)),
                   schedule=schedule, n_threads=4, shadow_mode="compiled")
    ParallelRuntime(dbm)
    result = dbm.run(max_instructions=500_000_000)
    assert result.stats["loop_invocations_parallel"] > 0
    assert result.stats["superblock_entries"] > 0
    counters = dbm.registry.as_dict()
    assert counters.get("runtime.shadow.summarised", 0) > 0


def test_detection_verdicts_match_across_representations():
    """A synthetic conflict raises identically from sets and from sinks."""
    from repro.dbm.machine import ThreadContext
    from repro.dbm.modifier import JanusDBM
    from repro.dbm.rtcalls import DependenceViolationError
    from repro.jcc import CompileOptions, compile_source
    from repro.rewrite.metadata import LoopMeta

    image = compile_source("int main() { print_int(1); return 0; }",
                           CompileOptions(opt_level=2))
    dbm = JanusDBM(load(image))
    runtime = ParallelRuntime(dbm)
    meta = LoopMeta(loop_id=0, header_addr=0, preheader_addr=0,
                    exit_target=0, iterator_var=("stack", 0), step=1,
                    cond="l", test_offset=0, test_position="top",
                    bound_form=("imm", 0), cmp_address=0, iv_operand_index=0,
                    static_trips=-1, delta_header=0)

    def hook_worker(thread_id, reads, writes):
        return WorkerState(thread_id=thread_id,
                           ctx=ThreadContext(thread_id=thread_id),
                           chunks=[(0, 1)], meta=meta,
                           reads=set(reads), writes=set(writes))

    def sink_worker(thread_id, reads, descriptors):
        sink = ShadowSink(thread_id=thread_id, tls_lo=1 << 40,
                          tls_hi=(1 << 40) + 64, stack_lo=1 << 41,
                          stack_hi=(1 << 41) + 64)
        sink.reads.extend(reads)
        worker = WorkerState(thread_id=thread_id,
                             ctx=ThreadContext(thread_id=thread_id),
                             chunks=[(0, 1)], meta=meta, sink=sink,
                             descriptors=list(descriptors))
        worker.view = ShadowView.from_sink(thread_id, sink,
                                           list(descriptors))
        return worker

    # Thread 1 writes [0x1000, 0x1040); thread 2 reads 0x1020: conflict.
    hook_pair = [hook_worker(1, [], [0x1000 + WORD * k for k in range(8)]),
                 hook_worker(2, [0x1020], [])]
    sink_pair = [sink_worker(1, [], [StrideDescriptor(0x1000, 8, 8, 1,
                                                      True)]),
                 sink_worker(2, [0x1020], [])]

    messages = []
    for pair in (hook_pair, sink_pair):
        with pytest.raises(DependenceViolationError) as err:
            runtime._detect_violations(pair)
        messages.append(str(err.value))
    assert messages[0] == messages[1]
    assert "0x1020" in messages[0]


# -- hypothesis: descriptor math vs brute-force expansion -------------------

descriptor_st = st.builds(
    StrideDescriptor,
    st.integers(min_value=0x1000, max_value=0x2000).map(lambda a: a & ~7),
    st.sampled_from([-64, -24, -16, -8, 0, 8, 16, 24, 64, 72]),
    st.integers(min_value=1, max_value=40),
    st.sampled_from([1, 2, 4]),
    st.booleans(),
)

addr_st = st.integers(min_value=0x1000 // 8, max_value=0x3000 // 8) \
    .map(lambda w: w * 8)

sink_contents_st = st.tuples(
    st.lists(addr_st, max_size=10),               # raw reads
    st.lists(addr_st, max_size=10),               # raw writes
    st.lists(st.tuples(addr_st, st.sampled_from([2, 4])), max_size=4),
    st.lists(descriptor_st, max_size=4),
)


def build_view(thread_id, contents):
    reads, writes, packed_writes, descriptors = contents
    sink = ShadowSink(thread_id=thread_id, tls_lo=1 << 40,
                      tls_hi=(1 << 40) + 64, stack_lo=1 << 41,
                      stack_hi=(1 << 41) + 64)
    sink.reads.extend(reads)
    sink.writes.extend(writes)
    sink.packed_writes.extend(packed_writes)
    return ShadowView.from_sink(thread_id, sink, list(descriptors))


def brute_sets(contents):
    reads, writes, packed_writes, descriptors = contents
    read_set = set(reads)
    write_set = set(writes)
    lines = Counter()
    for addr in writes:
        lines[addr >> 6] += 1
    for base, lanes in packed_writes:
        lines[base >> 6] += 1
        write_set.update(base + WORD * k for k in range(lanes))
    for d in descriptors:
        target = write_set if d.is_write else read_set
        for lane in range(d.lanes):
            target.update(d.first + WORD * lane + d.stride * k
                          for k in range(d.trips))
        if d.is_write:
            for k in range(d.trips):
                lines[(d.first + d.stride * k) >> 6] += 1
    return read_set, write_set, lines


@settings(max_examples=120, deadline=None)
@given(sink_contents_st, sink_contents_st)
def test_view_queries_match_bruteforce(contents_a, contents_b):
    view_a, view_b = build_view(1, contents_a), build_view(2, contents_b)
    reads_a, writes_a, lines_a = brute_sets(contents_a)
    reads_b, writes_b, lines_b = brute_sets(contents_b)
    # The interval prefilter is conservative: a real conflict always
    # passes it (expand-on-overlap can never miss an overlap).
    conflict = bool((writes_a & (reads_b | writes_b))
                    | (reads_a & writes_b))
    if conflict:
        assert views_may_conflict(view_a, view_b)
    # Exact expansion and membership agree with brute force.
    assert view_a.reads() == reads_a
    assert view_a.writes() == writes_a
    assert view_a.line_counts() == lines_a
    assert view_b.line_counts() == lines_b
    probe = sorted(writes_a | reads_a | writes_b)[:16]
    for addr in probe:
        assert view_b.writes_contain(addr) == (addr in writes_b)


@settings(max_examples=80, deadline=None)
@given(descriptor_st)
def test_descriptor_interval_and_contains(desc):
    expanded = desc.addresses()
    lo, hi = desc.interval()
    assert min(expanded) == lo
    assert max(expanded) == hi
    for addr in list(expanded)[:32]:
        assert desc.contains(addr)
    assert not desc.contains(lo - WORD)
    assert not desc.contains(hi + WORD)
