"""Unit tests for the sparse memory and machine state."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dbm.machine import Machine, ThreadContext, make_main_context
from repro.dbm.memory import Memory, MemoryFault, f64_to_i64, i64_to_f64, s64
from repro.isa.registers import STACK_REG, TLS_REG
from repro.jbin import layout


class TestBitHelpers:
    def test_s64_wraps(self):
        assert s64(2**63) == -(2**63)
        assert s64(2**64) == 0
        assert s64(-1) == -1
        assert s64(2**63 - 1) == 2**63 - 1

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_s64_range(self, value):
        wrapped = s64(value)
        assert -(2**63) <= wrapped < 2**63
        assert (wrapped - value) % (2**64) == 0

    @given(st.floats(allow_nan=False))
    def test_f64_round_trip(self, value):
        assert i64_to_f64(f64_to_i64(value)) == value

    def test_zero_bits_is_zero_float(self):
        # The runtime relies on this: zero-initialised TLS reads as 0.0.
        assert i64_to_f64(0) == 0.0
        assert f64_to_i64(0.0) == 0


class TestMemory:
    def test_unmapped_reads_zero(self):
        assert Memory().read(0x12345678 & ~7) == 0

    def test_write_read(self):
        memory = Memory()
        memory.write(0x1000, -5)
        assert memory.read(0x1000) == -5

    def test_float_access(self):
        memory = Memory()
        memory.write_f64(0x2000, 3.25)
        assert memory.read_f64(0x2000) == 3.25
        # The bits are visible to integer reads (bit-pattern honesty).
        assert memory.read(0x2000) == f64_to_i64(3.25)

    def test_misaligned_faults(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.read(0x1001)
        with pytest.raises(MemoryFault):
            memory.write(0x1004, 1)

    def test_copy_is_independent(self):
        memory = Memory()
        memory.write(0x1000, 1)
        clone = memory.copy()
        clone.write(0x1000, 2)
        assert memory.read(0x1000) == 1

    def test_snapshot_drops_zeros(self):
        memory = Memory()
        memory.write(0x1000, 5)
        memory.write(0x1008, 0)
        assert memory.snapshot() == {0x1000: 5}


class TestThreadContext:
    def test_stack_and_tls_are_per_thread(self):
        t0 = ThreadContext(thread_id=0)
        t3 = ThreadContext(thread_id=3)
        assert t0.stack_top == layout.thread_stack_top(0)
        assert t3.stack_top == layout.thread_stack_top(3)
        assert t0.stack_top != t3.stack_top
        assert t3.tls_base == layout.thread_tls_base(3)

    def test_install_tls_points_r15(self):
        ctx = ThreadContext(thread_id=2)
        ctx.install_tls()
        assert ctx.gregs[TLS_REG] == layout.thread_tls_base(2)

    def test_copy_registers(self):
        a = ThreadContext(thread_id=0)
        a.gregs[3] = 77
        a.fregs[4] = 1.5
        a.flags = -1
        b = ThreadContext(thread_id=1)
        b.copy_registers_from(a)
        assert b.gregs[3] == 77
        assert b.fregs[4] == 1.5
        assert b.flags == -1
        b.gregs[3] = 0
        assert a.gregs[3] == 77  # deep copy

    def test_main_context_halt_sentinel(self):
        memory = Memory()
        ctx = make_main_context(0x400000, memory)
        assert ctx.pc == 0x400000
        assert memory.read(ctx.gregs[STACK_REG]) == 0  # HALT_ADDRESS


class TestMachineIO:
    def test_outputs_and_text(self):
        machine = Machine()
        machine.print_int(42)
        machine.print_f64(1.5)
        assert machine.outputs == [("i", 42), ("f", 1.5)]
        assert machine.output_text() == "42\n1.5"

    def test_read_int_eof(self):
        machine = Machine(inputs=[7])
        assert machine.read_int() == 7
        assert machine.read_int() == -1  # EOF convention
