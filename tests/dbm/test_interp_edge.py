"""Edge-case interpreter tests: indirect control flow, limits, errors."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin import syscalls
from repro.dbm.interp import ExecutionLimitExceeded, JXRuntimeError

from tests.helpers import ints, run_asm

RAX, RBX, RCX, RDI = Reg(R.rax), Reg(R.rbx), Reg(R.rcx), Reg(R.rdi)


def emit_print(a, src):
    a.emit(O.MOV, RDI, src)
    a.emit(O.MOV, RAX, Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)


class TestIndirectControlFlow:
    def test_indirect_jump_through_register(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, RBX, Label("target"))
            a.emit(O.JMPI, RBX)
            emit_print(a, Imm(111))  # skipped
            a.emit(O.RET)
            a.label("target")
            emit_print(a, Imm(222))
            a.emit(O.RET)

        assert ints(run_asm(build)) == [222]

    def test_jump_table(self):
        """Dispatch through a table of code addresses built at startup."""

        def build_runtime_table(a):
            a.label("_start")
            a.emit(O.MOV, RBX, Label("case0"))
            a.emit(O.MOV, Mem(disp=Label("jumptable")), RBX)
            a.emit(O.MOV, RBX, Label("case1"))
            from repro.isa.operands import LabelRef

            a.emit(O.MOV, Mem(disp=LabelRef("jumptable", 8)), RBX)
            a.emit(O.MOV, RCX, Imm(1))
            a.emit(O.MOV, RBX,
                   Mem(index=R.rcx, scale=8, disp=Label("jumptable")))
            a.emit(O.JMPI, RBX)
            a.label("case0")
            emit_print(a, Imm(100))
            a.emit(O.RET)
            a.label("case1")
            emit_print(a, Imm(101))
            a.emit(O.RET)
            a.space("jumptable", 2)

        assert ints(run_asm(build_runtime_table)) == [101]

    def test_indirect_call(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, RBX, Label("callee"))
            a.emit(O.CALLI, RBX)
            emit_print(a, RAX)
            a.emit(O.RET)
            a.label("callee")
            a.emit(O.MOV, RAX, Imm(77))
            a.emit(O.RET)

        assert ints(run_asm(build)) == [77]


class TestLimitsAndErrors:
    def test_instruction_limit(self):
        def build(a):
            a.label("_start")
            a.label("spin")
            a.emit(O.JMP, Label("spin"))

        from repro.jbin.asm import Assembler
        from repro.jbin.loader import load
        from repro.dbm.executor import run_native

        a = Assembler()
        build(a)
        process = load(a.assemble(entry="_start"))
        with pytest.raises(ExecutionLimitExceeded):
            run_native(process, max_instructions=10_000)

    def test_unknown_syscall(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, RAX, Imm(99))
            a.emit(O.SYSCALL)
            a.emit(O.RET)

        with pytest.raises(JXRuntimeError):
            run_asm(build)

    def test_fp_division_by_zero(self):
        def build(a):
            a.double("one", 1.0)
            a.label("_start")
            a.emit(O.MOVSD, Reg(R.xmm0), Mem(disp=Label("one")))
            a.emit(O.XORPD, Reg(R.xmm1), Reg(R.xmm1))
            a.emit(O.DIVSD, Reg(R.xmm0), Reg(R.xmm1))
            a.emit(O.RET)

        with pytest.raises(JXRuntimeError):
            run_asm(build)

    def test_sqrt_of_negative(self):
        def build(a):
            a.double("neg", -4.0)
            a.label("_start")
            a.emit(O.SQRTSD, Reg(R.xmm0), Mem(disp=Label("neg")))
            a.emit(O.RET)

        with pytest.raises(JXRuntimeError):
            run_asm(build)

    def test_rtcall_without_runtime(self):
        """A schedule-inserted RTCALL outside a DBM context must fail
        loudly, not silently."""
        from repro.dbm.blocks import Block
        from repro.dbm.interp import Interpreter
        from repro.dbm.machine import Machine, make_main_context
        from repro.isa.instructions import Instruction, Opcode

        machine = Machine()
        ctx = make_main_context(0x400000, machine.memory)
        interp = Interpreter(machine, process=None)
        block = Block(start=0x400000,
                      instructions=[Instruction(Opcode.RTCALL,
                                                (Imm(1), Imm(0)))],
                      end=0x400002)
        with pytest.raises(JXRuntimeError):
            interp.execute_block(ctx, block)
