"""End-to-end parallelisation tests: the correctness oracle.

Every test builds a program, runs it natively, runs it under full Janus
(static analysis -> schedule -> DBM + thread pool), and asserts identical
observable behaviour (printed outputs and final data memory).
"""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label, LabelRef
from repro.isa.registers import R
from repro.jbin import syscalls
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.dbm.executor import run_native
from repro.dbm.modifier import run_under_dbm
from repro.pipeline import Janus, JanusConfig, SelectionMode

RAX, RBX, RCX, RDX = Reg(R.rax), Reg(R.rbx), Reg(R.rcx), Reg(R.rdx)
RDI, RSI = Reg(R.rdi), Reg(R.rsi)
XMM0, XMM1 = Reg(R.xmm0), Reg(R.xmm1)


def emit_print_int(a, src):
    a.emit(O.MOV, RDI, src)
    a.emit(O.MOV, RAX, Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)


def emit_print_f64(a):
    a.emit(O.MOV, RAX, Imm(syscalls.PRINT_F64))
    a.emit(O.SYSCALL)


def build_image(build):
    a = Assembler()
    build(a)
    return a.assemble(entry="_start")


def assert_equivalent(image, inputs=None, n_threads=4,
                      mode=SelectionMode.JANUS, expect_parallel=True,
                      train=True):
    """The oracle: native run == Janus parallel run, observably."""
    native = run_native(load(image, inputs=inputs))
    config = JanusConfig(n_threads=n_threads, coverage_threshold=0.0)
    janus = Janus(image, config)
    training = janus.train(train_inputs=inputs) if train else None
    result = janus.run(mode, inputs=inputs, training=training)
    assert result.outputs == native.outputs
    assert result.data_snapshot() == native.data_snapshot()
    assert result.exit_code == native.exit_code
    if expect_parallel:
        assert result.stats["loop_invocations_parallel"] >= 1
    return native, result


# -- plain DBM (DynamoRIO baseline) -------------------------------------------


class TestPlainDBM:
    def test_dbm_preserves_behaviour(self):
        def build(a):
            a.word("arr", *range(8))
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.emit(O.MOV, RAX, Imm(0))
            a.label("loop")
            a.emit(O.ADD, RAX, Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(8))
            a.emit(O.JL, Label("loop"))
            emit_print_int(a, RAX)
            a.emit(O.RET)

        image = build_image(build)
        native = run_native(load(image))
        dbm = run_under_dbm(load(image))
        assert dbm.outputs == native.outputs
        assert dbm.cycles > native.cycles  # translation overhead exists
        assert dbm.stats["translation_cycles"] > 0

    def test_dbm_overhead_amortises_with_reuse(self):
        """Hot loops re-execute from the code cache: relative overhead
        shrinks as iteration counts grow."""

        def make(n):
            def build(a):
                a.label("_start")
                a.emit(O.MOV, RCX, Imm(0))
                a.label("loop")
                a.emit(O.INC, RCX)
                a.emit(O.CMP, RCX, Imm(n))
                a.emit(O.JL, Label("loop"))
                a.emit(O.RET)

            return build_image(build)

        overheads = []
        for n in (10, 10_000):
            image = make(n)
            native = run_native(load(image))
            dbm = run_under_dbm(load(image))
            overheads.append(dbm.cycles / native.cycles)
        assert overheads[1] < overheads[0]
        assert overheads[1] < 1.10


# -- static DOALL parallelisation -----------------------------------------------


class TestStaticDoallParallel:
    def test_array_fill(self):
        def build(a):
            arr = a.space("arr", 128)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RCX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(128))
            a.emit(O.JL, Label("loop"))
            emit_print_int(a, Mem(disp=LabelRef("arr", 8 * 100)))
            emit_print_int(a, RCX)  # final iterator value
            a.emit(O.RET)

        assert_equivalent(build_image(build))

    def test_parallel_is_faster_in_cycles(self):
        """A hot enough loop must beat native even after pool startup."""

        def build(a):
            arr = a.space("arr", 4000)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, RCX)
            a.emit(O.IMUL, RAX, RCX)
            a.emit(O.IMUL, RAX, RCX)
            a.emit(O.IDIV, RAX, Imm(7))
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(4000))
            a.emit(O.JL, Label("loop"))
            emit_print_int(a, Mem(disp=LabelRef("arr", 8 * 3999)))
            a.emit(O.RET)

        native, result = assert_equivalent(build_image(build), n_threads=8)
        assert result.cycles < native.cycles  # actual speedup
        # Most of the residual is the one-time pool startup; the parallel
        # region itself must be well under half the native time.
        parallel_region = result.stats["parallel_cycles"]
        assert parallel_region < 0.5 * native.cycles

    def test_integer_reduction(self):
        def build(a):
            a.word("arr", *range(300))
            a.label("_start")
            a.emit(O.MOV, RAX, Imm(1000))  # non-zero initial accumulator
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.ADD, RAX, Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(300))
            a.emit(O.JL, Label("loop"))
            emit_print_int(a, RAX)
            a.emit(O.RET)

        native, result = assert_equivalent(build_image(build))
        assert native.outputs == [("i", 1000 + sum(range(300)))]

    def test_float_reduction(self):
        def build(a):
            a.double("arr", *[float(i) * 0.5 for i in range(64)])
            a.label("_start")
            a.emit(O.XORPD, XMM0, XMM0)
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.ADDSD, XMM0,
                   Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(64))
            a.emit(O.JL, Label("loop"))
            emit_print_f64(a)
            a.emit(O.RET)

        native, result = assert_equivalent(build_image(build))
        (kind, value), = native.outputs
        assert value == pytest.approx(sum(float(i) * 0.5 for i in range(64)))

    def test_downward_strided_loop(self):
        def build(a):
            arr = a.space("arr", 256)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(255))
            a.label("loop")
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RCX)
            a.emit(O.SUB, RCX, Imm(3))
            a.emit(O.CMP, RCX, Imm(0))
            a.emit(O.JGE, Label("loop"))
            emit_print_int(a, Mem(disp=LabelRef("arr", 0)))
            emit_print_int(a, Mem(disp=LabelRef("arr", 8 * 255)))
            a.emit(O.RET)

        assert_equivalent(build_image(build))

    def test_two_invocations_with_different_bounds(self):
        """The TLS-bound design must survive cache reuse across calls."""

        def build(a):
            arr = a.space("arr", 600)
            a.label("_start")
            a.emit(O.MOV, RSI, Imm(200))
            a.emit(O.CALL, Label("fill"))
            a.emit(O.MOV, RSI, Imm(600))
            a.emit(O.CALL, Label("fill"))
            emit_print_int(a, Mem(disp=LabelRef("arr", 8 * 599)))
            a.emit(O.RET)
            a.label("fill")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RCX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, RSI)
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        native, result = assert_equivalent(build_image(build))
        assert result.stats["loop_invocations_parallel"] == 2

    def test_readonly_stack_slot_redirected_to_main_stack(self):
        def build(a):
            arr = a.space("arr", 96)
            a.label("_start")
            a.emit(O.SUB, Reg(R.rsp), Imm(16))
            a.emit(O.MOV, Mem(base=R.rsp, disp=0), Imm(7))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Mem(base=R.rsp, disp=0))
            a.emit(O.IMUL, RAX, RCX)
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(96))
            a.emit(O.JL, Label("loop"))
            a.emit(O.ADD, Reg(R.rsp), Imm(16))
            emit_print_int(a, Mem(disp=LabelRef("arr", 8 * 95)))
            a.emit(O.RET)

        assert_equivalent(build_image(build))

    def test_multiple_induction_variables(self):
        """Pointer-strided secondary IV must get per-chunk initial values."""

        def build(a):
            a.space("arr", 128)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.emit(O.MOV, RDX, Imm(0x10000000))  # &arr
            a.label("loop")
            a.emit(O.MOV, Mem(base=R.rdx), RCX)
            a.emit(O.ADD, RDX, Imm(8))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(128))
            a.emit(O.JL, Label("loop"))
            emit_print_int(a, Mem(disp=Imm(0x10000000 + 8 * 127).value))
            a.emit(O.RET)

        assert_equivalent(build_image(build))


# -- dynamic DOALL: runtime checks ------------------------------------------------


class TestBoundsChecks:
    def _copy_image(self, src_ptr, dst_ptr):
        def build(a):
            a.word("pa", dst_ptr)
            a.word("pb", src_ptr)
            a.space("data", 1024)
            a.label("_start")
            a.emit(O.MOV, Reg(R.r8), Mem(disp=Label("pa")))
            a.emit(O.MOV, Reg(R.r9), Mem(disp=Label("pb")))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Mem(base=R.r9, index=R.rcx, scale=8))
            a.emit(O.ADD, RAX, Imm(5))
            a.emit(O.MOV, Mem(base=R.r8, index=R.rcx, scale=8), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(256))
            a.emit(O.JL, Label("loop"))
            emit_print_int(a, Mem(base=R.r8, disp=8 * 255))
            a.emit(O.RET)

        return build_image(build)

    def test_disjoint_arrays_run_parallel(self):
        from repro.jbin.layout import DATA_BASE

        data = DATA_BASE + 16  # address of "data"
        image = self._copy_image(src_ptr=data, dst_ptr=data + 8 * 512)
        native, result = assert_equivalent(image)
        assert result.stats["checks_passed"] >= 1

    def test_overlapping_arrays_fall_back_to_sequential(self):
        """Without training (the dependence was never profiled), the
        runtime check is the only line of defence: it must fail and the
        loop must run sequentially, preserving the recurrence."""
        from repro.jbin.layout import DATA_BASE

        data = DATA_BASE + 16
        # dst overlaps src shifted by one word: a genuine recurrence.
        image = self._copy_image(src_ptr=data, dst_ptr=data + 8)
        native, result = assert_equivalent(image, expect_parallel=False,
                                           train=False)
        assert result.stats["checks_failed"] >= 1
        assert result.stats["loop_invocations_parallel"] == 0
        assert result.stats["loop_invocations_sequential"] >= 1

    def test_training_deselects_observed_dependence(self):
        """With training inputs that exhibit the dependence, the loop is
        classified Type D and never selected at all."""
        from repro.jbin.layout import DATA_BASE

        data = DATA_BASE + 16
        image = self._copy_image(src_ptr=data, dst_ptr=data + 8)
        native, result = assert_equivalent(image, expect_parallel=False)
        assert result.stats.get("checks_failed", 0) == 0  # no rules emitted
        assert result.stats["loop_invocations_parallel"] == 0


# -- STM: dynamically discovered code ----------------------------------------------


class TestSTM:
    def test_library_call_in_loop(self):
        """bwaves-style: the hot loop calls pow@plt; Janus wraps it in a
        transaction (11 reads / 0 writes -> no conflicts, commits cleanly)."""

        def build(a):
            powf = a.import_symbol("pow")
            a.double("arr", *[0.001 * i for i in range(64)])
            a.double("two", 2.0)
            a.label("_start")
            a.emit(O.MOV, RDX, Imm(0))
            a.label("loop")
            a.emit(O.MOVSD, XMM0,
                   Mem(index=R.rdx, scale=8, disp=Label("arr")))
            a.emit(O.MOVSD, XMM1, Mem(disp=Label("two")))
            a.emit(O.CALL, powf)
            a.emit(O.MOVSD, Mem(index=R.rdx, scale=8, disp=Label("arr")),
                   XMM0)
            a.emit(O.INC, RDX)
            a.emit(O.CMP, RDX, Imm(64))
            a.emit(O.JL, Label("loop"))
            a.emit(O.MOVSD, XMM0, Mem(disp=LabelRef("arr", 8 * 63)))
            emit_print_f64(a)
            a.emit(O.RET)

        # rdx is caller-saved; the analyser must reject it... unless the
        # compiler used a callee-saved register.  Use rbx instead.
        def build_ok(a):
            powf = a.import_symbol("pow")
            a.double("arr", *[0.001 * i for i in range(64)])
            a.double("two", 2.0)
            a.label("_start")
            a.emit(O.MOV, RDX, Imm(0))  # rbx alias below
            a.emit(O.MOV, Reg(R.rbx), Imm(0))
            a.label("loop")
            a.emit(O.MOVSD, XMM0,
                   Mem(index=R.rbx, scale=8, disp=Label("arr")))
            a.emit(O.MOVSD, XMM1, Mem(disp=Label("two")))
            a.emit(O.CALL, powf)
            a.emit(O.MOVSD, Mem(index=R.rbx, scale=8, disp=Label("arr")),
                   XMM0)
            a.emit(O.INC, Reg(R.rbx))
            a.emit(O.CMP, Reg(R.rbx), Imm(64))
            a.emit(O.JL, Label("loop"))
            a.emit(O.MOVSD, XMM0, Mem(disp=LabelRef("arr", 8 * 63)))
            emit_print_f64(a)
            a.emit(O.RET)

        native, result = assert_equivalent(build_image(build_ok))
        assert result.stats["stm_cycles"] > 0


# -- violation detection --------------------------------------------------------------


class TestViolationDetection:
    def test_forced_bad_parallelisation_is_caught(self):
        """If a dependent loop is forced through the generator, the shadow
        conflict detector must catch the cross-thread dependence."""
        from repro.analysis import LoopCategory, analyze_image
        from repro.dbm.modifier import JanusDBM
        from repro.dbm.runtime import ParallelRuntime
        from repro.dbm.rtcalls import DependenceViolationError
        from repro.rewrite import generate_parallel_schedule

        def build(a):
            arr = a.word("arr", *([1] * 256))
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(1))
            a.label("loop")
            a.emit(O.MOV, RAX,
                   Mem(index=R.rcx, scale=8, disp=LabelRef("arr", -8)))
            a.emit(O.ADD, RAX, Imm(1))
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(256))
            a.emit(O.JL, Label("loop"))
            emit_print_int(a, Mem(disp=LabelRef("arr", 8 * 255)))
            a.emit(O.RET)

        image = build_image(build)
        analysis = analyze_image(image)
        loop = analysis.loops[0]
        assert loop.category is LoopCategory.STATIC_DEPENDENCE
        # Force it through the generator as if analysis had blessed it.
        loop.category = LoopCategory.STATIC_DOALL
        loop.alias.dependences.clear()
        schedule = generate_parallel_schedule(analysis, [loop.loop_id])
        dbm = JanusDBM(load(image), schedule=schedule, n_threads=4,
                       strict=True)
        ParallelRuntime(dbm)
        with pytest.raises(DependenceViolationError):
            dbm.run()
