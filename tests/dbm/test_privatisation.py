"""End-to-end tests for MEM_PRIVATISE: scalar temporaries and memory
reductions rewritten into thread-local storage (paper Fig. 2b's third
rewrite rule)."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label, LabelRef
from repro.isa.registers import R
from repro.jbin import syscalls
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.dbm.executor import run_native
from repro.pipeline import Janus, JanusConfig, SelectionMode
from repro.rewrite.rules import RuleID

RAX, RBX, RCX, RDI = Reg(R.rax), Reg(R.rbx), Reg(R.rcx), Reg(R.rdi)


def emit_print(a, src):
    a.emit(O.MOV, RDI, src)
    a.emit(O.MOV, RAX, Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)


def run_both(build, n_threads=4):
    a = Assembler()
    build(a)
    image = a.assemble(entry="_start")
    native = run_native(load(image))
    janus = Janus(image, JanusConfig(n_threads=n_threads,
                                     coverage_threshold=0.0))
    training = janus.train()
    schedule = janus.build_schedule(SelectionMode.JANUS, training)
    result = janus.run(SelectionMode.JANUS, training=training)
    assert result.outputs == native.outputs
    assert result.data_snapshot() == native.data_snapshot()
    return native, result, schedule


class TestWriteFirstScalar:
    def build(self, a):
        """tmp is written then read every iteration: WAR/WAW only."""
        arr = a.space("arr", 200)
        tmp = a.word("tmp", 0)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOV, RAX, RCX)
        a.emit(O.IMUL, RAX, Imm(3))
        a.emit(O.MOV, Mem(disp=tmp), RAX)            # write tmp
        a.emit(O.MOV, RBX, Mem(disp=tmp))            # read tmp back
        a.emit(O.ADD, RBX, Imm(7))
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RBX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(200))
        a.emit(O.JL, Label("loop"))
        emit_print(a, Mem(disp=LabelRef("arr", 8 * 150)))
        emit_print(a, Mem(disp=tmp))   # last sequential value visible
        a.emit(O.RET)

    def test_parallelised_with_privatise_rules(self):
        native, result, schedule = run_both(self.build)
        assert result.stats["loop_invocations_parallel"] == 1
        privatise = schedule.rules_of_kind(RuleID.MEM_PRIVATISE)
        assert len(privatise) == 2  # the tmp write and the tmp read
        assert native.outputs[0] == ("i", 150 * 3 + 7)
        assert native.outputs[1] == ("i", 199 * 3)


class TestMemoryReduction:
    def build(self, a):
        """counter += i via a memory RMW: an additive memory reduction."""
        counter = a.word("counter", 5)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.ADD, Mem(disp=counter), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(100))
        a.emit(O.JL, Label("loop"))
        emit_print(a, Mem(disp=counter))
        a.emit(O.RET)

    def test_reduction_merged(self):
        native, result, schedule = run_both(self.build)
        assert result.stats["loop_invocations_parallel"] == 1
        assert schedule.rules_of_kind(RuleID.MEM_PRIVATISE)
        assert native.outputs == [("i", 5 + sum(range(100)))]


class TestFloatMemoryReduction:
    def build(self, a):
        """total += 0.5 each iteration, accumulator held in memory."""
        total = a.double("total", 1.0)
        a.double("half", 0.5)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOVSD, Reg(R.xmm0), Mem(disp=total))
        a.emit(O.ADDSD, Reg(R.xmm0), Mem(disp=Label("half")))
        a.emit(O.MOVSD, Mem(disp=total), Reg(R.xmm0))
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.MOVSD, Reg(R.xmm0), Mem(disp=total))
        a.emit(O.MOV, RAX, Imm(syscalls.PRINT_F64))
        a.emit(O.SYSCALL)
        a.emit(O.RET)

    def test_float_reduction_merged(self):
        native, result, schedule = run_both(self.build)
        assert result.stats["loop_invocations_parallel"] == 1
        assert native.outputs == [("f", pytest.approx(1.0 + 32.0))]


class TestConditionalWriteStaysSequential:
    def test_conditional_scalar_write_not_privatised(self):
        """A write that does not execute every iteration cannot be
        privatised with last-thread copy-back: must stay sequential."""

        def build(a):
            flag = a.word("flag", 0)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.TEST, RCX, Imm(1))
            a.emit(O.JNE, Label("skip"))
            a.emit(O.MOV, Mem(disp=flag), RCX)  # only even iterations
            a.label("skip")
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(50))
            a.emit(O.JL, Label("loop"))
            emit_print(a, Mem(disp=flag))
            a.emit(O.RET)

        a = Assembler()
        build(a)
        image = a.assemble(entry="_start")
        janus = Janus(image, JanusConfig(n_threads=4))
        from repro.analysis import LoopCategory

        loop = janus.analysis.loops[0]
        assert loop.category is LoopCategory.STATIC_DEPENDENCE
