"""Unit tests for rewrite-rule handlers (translation-time transforms)."""

import pytest

from repro.isa import Imm, Instruction, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R, SCRATCH_REG, TLS_REG
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.dbm.blocks import discover_block
from repro.dbm.editor import BlockEditor
from repro.dbm.handlers import HANDLERS, TranslationContext
from repro.dbm.rtcalls import RTCallID
from repro.rewrite.rules import RewriteRule, RuleID
from repro.rewrite.schedule import RewriteSchedule


class FakeDBM:
    def __init__(self, schedule):
        self.schedule = schedule


def build_loop_process():
    a = Assembler()
    arr = a.space("arr", 64)
    a.label("_start")
    a.emit(O.MOV, Reg(R.rcx), Imm(0))
    a.label("loop")
    a.emit(O.MOV, Reg(R.rax), Mem(base=R.rsp, disp=8))       # stack read
    a.emit(O.ADD, Mem(disp=Label("counter")), Reg(R.rax))    # heap RMW
    a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), Reg(R.rax))
    a.emit(O.INC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(64))
    a.emit(O.JL, Label("loop"))
    a.emit(O.RET)
    a.word("counter", 0)
    return load(a.assemble(entry="_start"))


@pytest.fixture
def loop_block():
    # No calls in the program: the whole loop is one discovered block.
    process = build_loop_process()
    return process, discover_block(process, process.entry)


def worker_tctx(schedule):
    return TranslationContext(dbm=FakeDBM(schedule), thread_id=1,
                              worker=object())


def main_tctx(schedule):
    return TranslationContext(dbm=FakeDBM(schedule), thread_id=0)


class TestMemPrivatise:
    def test_rewrites_heap_operand_to_tls(self, loop_block):
        process, block = loop_block
        schedule = RewriteSchedule()
        record = schedule.add_record(("mp", 5))
        add = [i for i in block.instructions if i.opcode is O.ADD][0]
        rule = RewriteRule(add.address, RuleID.MEM_PRIVATISE, record)
        editor = BlockEditor(block)
        HANDLERS[RuleID.MEM_PRIVATISE](editor, rule, worker_tctx(schedule))
        rewritten = editor.instruction_at(add.address)
        assert rewritten.operands[0] == Mem(base=TLS_REG, disp=40)

    def test_main_thread_untouched(self, loop_block):
        process, block = loop_block
        schedule = RewriteSchedule()
        record = schedule.add_record(("mp", 5))
        add = [i for i in block.instructions if i.opcode is O.ADD][0]
        rule = RewriteRule(add.address, RuleID.MEM_PRIVATISE, record)
        editor = BlockEditor(block)
        HANDLERS[RuleID.MEM_PRIVATISE](editor, rule, main_tctx(schedule))
        assert editor.instruction_at(add.address).operands == add.operands


class TestMemMainStack:
    def test_redirects_and_inserts_prelude(self, loop_block):
        process, block = loop_block
        schedule = RewriteSchedule()
        record = schedule.add_record(("ms", 8))
        stack_read = [i for i in block.instructions
                      if any(m.base == R.rsp for m in i.mem_reads())][0]
        rule = RewriteRule(stack_read.address, RuleID.MEM_MAIN_STACK,
                           record)
        editor = BlockEditor(block)
        HANDLERS[RuleID.MEM_MAIN_STACK](editor, rule, worker_tctx(schedule))
        # Prelude loads main rsp from TLS slot 0 into the scratch reg.
        prelude = editor.instructions[0]
        assert prelude.opcode is O.MOV
        assert prelude.operands == (Reg(SCRATCH_REG),
                                    Mem(base=TLS_REG, disp=0))
        rewritten = editor.instruction_at(stack_read.address)
        assert rewritten.operands[1] == Mem(base=SCRATCH_REG, disp=8)


class TestTxRules:
    def test_tx_start_inserts_before_call(self):
        a = Assembler()
        powf = a.import_symbol("pow")
        a.label("_start")
        a.emit(O.MOV, Reg(R.rbx), Imm(0))
        a.emit(O.CALL, powf)
        a.emit(O.RET)
        process = load(a.assemble(entry="_start"))
        block = discover_block(process, process.entry)
        schedule = RewriteSchedule()
        call = block.terminator
        rule = RewriteRule(call.address, RuleID.TX_START, 7)
        editor = BlockEditor(block)
        HANDLERS[RuleID.TX_START](editor, rule, worker_tctx(schedule))
        assert editor.instructions[-2].opcode is O.RTCALL
        assert editor.instructions[-2].operands[0].value == \
            int(RTCallID.TX_START)
        assert editor.instructions[-1].opcode is O.CALL


class TestSpillRecover:
    def test_spill_and_recover_emit_tls_moves(self, loop_block):
        process, block = loop_block
        schedule = RewriteSchedule()
        record = schedule.add_record(("spill", [R.rax, R.rcx], 10))
        anchor = block.instructions[0].address
        editor = BlockEditor(block)
        HANDLERS[RuleID.MEM_SPILL_REG](
            editor, RewriteRule(anchor, RuleID.MEM_SPILL_REG, record),
            worker_tctx(schedule))
        spills = [i for i in editor.instructions
                  if i.opcode is O.MOV and isinstance(i.operands[0], Mem)
                  and i.operands[0].base == TLS_REG]
        assert len(spills) == 2
        assert spills[0].operands[0].disp == 80

        HANDLERS[RuleID.MEM_RECOVER_REG](
            editor, RewriteRule(anchor, RuleID.MEM_RECOVER_REG, record),
            worker_tctx(schedule))
        recovers = [i for i in editor.instructions
                    if i.opcode is O.MOV and isinstance(i.operands[1], Mem)
                    and i.operands[1].base == TLS_REG
                    and isinstance(i.operands[0], Reg)
                    and i.operands[0].id != SCRATCH_REG]
        assert len(recovers) == 2


class TestTLSLayoutConsistency:
    def test_generator_and_handlers_agree(self):
        """The schedule generator's slot allocator must never hand out the
        runtime-reserved TLS slots (main rsp, thread bound)."""
        from repro.dbm import handlers as h
        from repro.rewrite import gen_parallel as g

        assert g.TLS_MAIN_RSP_SLOT == h.TLS_MAIN_RSP == 0
        assert g.TLS_BOUND_SLOT == h.TLS_BOUND == 1
        assert g.TLS_FIRST_PRIVATE_SLOT > h.TLS_BOUND


class TestThreadScheduleIsMetadataOnly:
    def test_no_code_change(self, loop_block):
        process, block = loop_block
        schedule = RewriteSchedule()
        editor = BlockEditor(block)
        before = list(editor.instructions)
        HANDLERS[RuleID.THREAD_SCHEDULE](
            editor, RewriteRule(block.start, RuleID.THREAD_SCHEDULE, 0),
            worker_tctx(schedule))
        assert editor.instructions == before
