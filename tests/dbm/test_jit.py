"""Differential tests: the compiled tiers must match the reference interpreter.

The trace-cache JIT (repro.dbm.jit) re-implements every opcode's semantics
as generated Python; any divergence from the reference ``_exec`` dispatch
would corrupt execution silently.  These tests run identical programs
through the reference path (``force_reference``), the fast compiled
variant, and the instrumented compiled variant (with a recording memory
hook, compared against the reference under the same hook) and require
bit-identical outcomes: registers, flags, memory, outputs, cycle and
instruction counts — and identical hook event streams.

``test_opcode_sweep`` is the pin for full template coverage: it sweeps all
opcodes with randomized operand kinds (register / immediate / memory with
base+index+scale addressing).
"""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbm.executor import run_native
from repro.dbm.interp import Interpreter
from repro.dbm.machine import Machine, make_main_context
from repro.dbm.blocks import discover_block
from repro.isa import Imm, Opcode as O, Reg
from repro.isa.operands import Label, Mem
from repro.isa.registers import R
from repro.jbin import syscalls
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source


def run_with_path(process, mode: str = "fast", record_hook: bool = False):
    """Execute a process through one of the execution tiers.

    ``mode`` is ``"fast"`` (compiled, no instrumentation), ``"reference"``
    (per-instruction reference dispatch) or ``"superblock"`` (the full
    trace-cache dispatcher with instant hot-loop promotion); with
    ``record_hook`` a recording memory hook is installed, which routes
    compiled execution through the instrumented variant.
    """
    machine = Machine()
    machine.memory.load_words(process.initial_data())
    machine.inputs = list(process.inputs)
    ctx = make_main_context(process.entry, machine.memory)
    interp = Interpreter(machine, process)
    if mode == "reference":
        interp.force_reference = True
    log = []
    if record_hook:
        def hook(hctx, ins, addr, is_write, lanes):
            log.append((ins.address, addr, bool(is_write), lanes))
        interp.mem_hook = hook
    cache = {}
    if mode == "superblock":
        from repro.dbm.tracecache import run_loop

        interp.superblock_threshold = 1

        def lookup(pc, _ctx):
            block = cache.get(pc)
            if block is None:
                block = cache[pc] = discover_block(process, pc)
            return block

        run_loop(interp, ctx, ctx.pc, lookup)
        return ctx, machine, log
    pc = ctx.pc
    steps = 0
    while pc is not None:
        block = cache.get(pc)
        if block is None:
            block = cache[pc] = discover_block(process, pc)
        pc = interp.execute_block(ctx, block)
        steps += 1
        assert steps < 3_000_000
    return ctx, machine, log


def _bits(value):
    """Floats compared by bit pattern so NaN == NaN holds."""
    if isinstance(value, float):
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    return value


def _state(ctx, machine):
    return {
        "gregs": list(ctx.gregs),
        "fregs": [_bits(v) for v in ctx.fregs],
        "flags": ctx.flags,
        "cycles": ctx.cycles,
        "instructions": ctx.instructions,
        "exit_code": ctx.exit_code,
        "outputs": [(kind, _bits(v)) for kind, v in machine.outputs],
        "memory": machine.memory.snapshot(),
    }


def assert_equivalent(build_process):
    """All execution tiers agree on the final architectural state.

    ``build_process`` is a zero-argument factory (each tier needs a fresh
    process/machine).
    """
    ref_ctx, ref_machine, _ = run_with_path(build_process(), "reference")
    fast_ctx, fast_machine, _ = run_with_path(build_process(), "fast")
    sb_ctx, sb_machine, _ = run_with_path(build_process(), "superblock")
    href_ctx, href_machine, href_log = run_with_path(
        build_process(), "reference", record_hook=True)
    inst_ctx, inst_machine, inst_log = run_with_path(
        build_process(), "fast", record_hook=True)
    reference = _state(ref_ctx, ref_machine)
    assert _state(fast_ctx, fast_machine) == reference
    assert _state(sb_ctx, sb_machine) == reference
    assert _state(href_ctx, href_machine) == reference
    assert _state(inst_ctx, inst_machine) == reference
    assert inst_log == href_log


# ---------------------------------------------------------------------------
# Randomized all-opcode sweep
# ---------------------------------------------------------------------------

# Pools: data/ALU registers are disjoint from addressing registers so a
# destination write can never corrupt an effective address mid-program.
# Integer ops use wbuf and FP ops use fbuf (doubles): reinterpreting random
# ints as doubles yields NaNs, and CPython's NaN payload propagation is not
# stable across call sites (the specialised BINARY_OP_ADD_FLOAT path and
# float_add order the addsd operands differently), so a payload-exact
# differential oracle must stay NaN-free.
_INT_REGS = (R.rax, R.rbx, R.rcx, R.rdx)
_WBUF_BASE = R.r8     # writable int scratch buffer base
_INDEX_REG = R.r9     # small non-negative index
_CBUF_BASE = R.r10    # read-only double constants base
_SCRATCH = R.r11
_FBUF_BASE = R.r12    # writable double scratch buffer base
_XMM_POOL = (R.xmm0, R.xmm1, R.xmm2, R.xmm3)
_XMM_PACKED_CONST = R.xmm6  # four nonzero positive lanes
_XMM_CONST = R.xmm7         # nonzero positive scalar
_WBUF_WORDS = 48

_INT_ALU = (O.MOV, O.LEA, O.ADD, O.SUB, O.IMUL, O.IDIV, O.IMOD, O.AND,
            O.OR, O.XOR, O.SHL, O.SHR, O.SAR, O.INC, O.DEC, O.NEG, O.NOT,
            O.CMP, O.TEST, O.CMOVE, O.CMOVNE, O.CMOVL, O.CMOVLE, O.CMOVG,
            O.CMOVGE)
_FP_ALU = (O.MOVSD, O.ADDSD, O.SUBSD, O.MULSD, O.DIVSD, O.SQRTSD, O.MINSD,
           O.MAXSD, O.UCOMISD, O.CVTSI2SD, O.CVTTSD2SI, O.XORPD)
_PACKED_ALU = (O.MOVAPD, O.ADDPD, O.SUBPD, O.MULPD, O.DIVPD,
               O.VMOVAPD, O.VADDPD, O.VSUBPD, O.VMULPD, O.VDIVPD)


def _mem_operand(rng, base=_WBUF_BASE, words=_WBUF_WORDS, span=1):
    """A random wbuf/cbuf memory operand, 8-aligned, in-bounds."""
    limit = words - span - 4  # leave room for index (0..3) and lanes
    disp = 8 * rng.randint(0, max(limit, 0))
    if rng.random() < 0.4:
        return Mem(base=base, index=_INDEX_REG, scale=8, disp=disp)
    return Mem(base=base, disp=disp)


def _sweep_prologue(a, rng):
    wbuf = a.space("wbuf", _WBUF_WORDS)
    cbuf = a.double(
        "cbuf", *[rng.choice([-1.0, 1.0]) * rng.uniform(0.5, 3.0)
                  for _ in range(4)])
    fbuf = a.double(
        "fbuf", *[rng.uniform(-8.0, 8.0) for _ in range(_WBUF_WORDS)])
    a.label("_start")
    a.emit(O.MOV, Reg(_WBUF_BASE), wbuf)
    a.emit(O.MOV, Reg(_CBUF_BASE), cbuf)
    a.emit(O.MOV, Reg(_FBUF_BASE), fbuf)
    a.emit(O.MOV, Reg(_INDEX_REG), Imm(rng.randint(0, 3)))
    for reg in _INT_REGS:
        magnitude = rng.choice([50, 10_000, 2**31, 2**62])
        a.emit(O.MOV, Reg(reg), Imm(rng.randint(-magnitude, magnitude)))
    for k in range(_WBUF_WORDS):
        a.emit(O.MOV, Mem(base=_WBUF_BASE, disp=8 * k),
               Imm(rng.randint(-10_000, 10_000)))
    # FP state: scalar lanes from the constant pool, xmm6 fully packed.
    for reg in _XMM_POOL:
        a.emit(O.MOVSD, Reg(reg),
               Mem(base=_CBUF_BASE, disp=8 * rng.randint(0, 3)))
    a.emit(O.MOVSD, Reg(_XMM_CONST), Mem(base=_CBUF_BASE, disp=0))
    a.emit(O.MULSD, Reg(_XMM_CONST), Reg(_XMM_CONST))  # square: > 0
    a.emit(O.VMOVAPD, Reg(_XMM_PACKED_CONST), Mem(base=_CBUF_BASE, disp=0))
    a.emit(O.CMP, Reg(R.rax), Imm(rng.randint(-5, 5)))


def _sweep_epilogue(a):
    a.emit(O.MOV, Reg(R.rdi), Reg(R.rax))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)
    a.emit(O.MOV, Reg(R.rdi), Mem(base=_WBUF_BASE, disp=8))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)
    a.emit(O.MOVSD, Reg(R.xmm0), Reg(R.xmm1))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_F64))
    a.emit(O.SYSCALL)
    a.emit(O.RET)


def _emit_int_case(a, rng, op):
    def int_dst():
        if rng.random() < 0.35:
            return _mem_operand(rng)
        return Reg(rng.choice(_INT_REGS))

    def int_src(nonzero=False):
        roll = rng.random()
        if roll < 0.35 and not nonzero:
            return Reg(rng.choice(_INT_REGS))
        if roll < 0.7 or nonzero:
            value = rng.randint(1, 9999) * rng.choice([-1, 1])
            return Imm(value if nonzero else rng.randint(-9999, 9999))
        return _mem_operand(rng)

    if rng.random() < 0.3:  # churn the flags between cases
        a.emit(O.CMP, Reg(rng.choice(_INT_REGS)), Imm(rng.randint(-3, 3)))
    if op is O.LEA:
        a.emit(op, Reg(rng.choice(_INT_REGS)), _mem_operand(rng))
    elif op in (O.INC, O.DEC, O.NEG, O.NOT):
        a.emit(op, int_dst())
    elif op in (O.IDIV, O.IMOD):
        a.emit(op, int_dst(), int_src(nonzero=True))
    elif op in (O.SHL, O.SHR, O.SAR):
        amount = Imm(rng.randint(0, 70)) if rng.random() < 0.6 \
            else Reg(rng.choice(_INT_REGS))
        a.emit(op, int_dst(), amount)
    elif op in (O.CMP, O.TEST):
        a.emit(op, int_src(), int_src())
    else:  # MOV / ADD / SUB / IMUL / AND / OR / XOR / CMOVcc
        a.emit(op, int_dst(), int_src())


def _emit_fp_case(a, rng, op):
    def fp_dst():
        if op is not O.XORPD and rng.random() < 0.3:
            return _mem_operand(rng, base=_FBUF_BASE)
        return Reg(rng.choice(_XMM_POOL))

    def fp_src(safe=False):
        # "safe": nonzero (divisor) and non-negative-capable (sqrt).
        if safe:
            if rng.random() < 0.5:
                return Reg(_XMM_CONST)
            return Mem(base=_CBUF_BASE, disp=8 * rng.randint(0, 3))
        roll = rng.random()
        if roll < 0.5:
            return Reg(rng.choice(_XMM_POOL))
        if roll < 0.75:
            return _mem_operand(rng, base=_FBUF_BASE)
        return Mem(base=_CBUF_BASE, disp=8 * rng.randint(0, 3))

    if op is O.XORPD:
        reg = Reg(rng.choice(_XMM_POOL))
        other = Reg(rng.choice(_XMM_POOL)) if rng.random() < 0.5 else reg
        a.emit(op, reg, other)
    elif op is O.DIVSD:
        a.emit(op, fp_dst(), fp_src(safe=True))
        # Divisions compound quickly; renormalise the destination pool.
        a.emit(O.MOVSD, Reg(rng.choice(_XMM_POOL)), Reg(_XMM_CONST))
    elif op is O.SQRTSD:
        a.emit(op, fp_dst(), Reg(_XMM_CONST))
    elif op is O.CVTSI2SD:
        src = Reg(rng.choice(_INT_REGS)) if rng.random() < 0.5 \
            else _mem_operand(rng)
        a.emit(op, fp_dst(), src)
    elif op is O.CVTTSD2SI:
        dst = Reg(rng.choice(_INT_REGS)) if rng.random() < 0.6 \
            else _mem_operand(rng)
        a.emit(op, dst, fp_src(safe=True))
    elif op is O.UCOMISD:
        a.emit(op, Reg(rng.choice(_XMM_POOL)), fp_src())
    else:  # MOVSD / ADDSD / SUBSD / MULSD / MINSD / MAXSD
        a.emit(op, fp_dst(), fp_src())


def _emit_packed_case(a, rng, op):
    lanes = 4 if op.name.startswith("V") else 2
    is_move = op in (O.MOVAPD, O.VMOVAPD)
    dst = Reg(rng.choice(_XMM_POOL))
    if is_move and rng.random() < 0.3:
        dst = _mem_operand(rng, base=_FBUF_BASE, span=lanes)
    if op in (O.DIVPD, O.VDIVPD):
        src = Reg(_XMM_PACKED_CONST) if rng.random() < 0.5 \
            else Mem(base=_CBUF_BASE, disp=0)
        a.emit(op, dst, src)
        # Renormalise so repeated divisions stay finite and comparable.
        a.emit(O.VMOVAPD, Reg(rng.choice(_XMM_POOL)),
               Reg(_XMM_PACKED_CONST))
        return
    if rng.random() < 0.5:
        src = Reg(rng.choice(_XMM_POOL + (_XMM_PACKED_CONST,)))
    elif rng.random() < 0.5:
        src = _mem_operand(rng, base=_FBUF_BASE, span=lanes)
    else:
        src = Mem(base=_CBUF_BASE, disp=0)
    a.emit(op, dst, src)


def _build_sweep_image(op, seed):
    rng = random.Random(seed)
    a = Assembler()
    _sweep_prologue(a, rng)
    for _ in range(16):
        if op in _INT_ALU:
            _emit_int_case(a, rng, op)
        elif op in _FP_ALU:
            _emit_fp_case(a, rng, op)
        else:
            _emit_packed_case(a, rng, op)
    _sweep_epilogue(a)
    return a.assemble(entry="_start")


@pytest.mark.parametrize("op", _INT_ALU + _FP_ALU + _PACKED_ALU,
                         ids=lambda op: op.name)
def test_opcode_sweep(op):
    """Every data opcode agrees across all tiers for random operand kinds."""
    for seed in (1, 2, 3):
        image = _build_sweep_image(op, seed)
        assert_equivalent(lambda: load(image))


def test_prefetch_hint():
    """PREFETCH evaluates its address operand but changes no state.

    The hint may legitimately target memory outside any mapped buffer
    (the rewrite rules add a stride*distance offset), so one case aims
    far past wbuf on purpose.
    """
    for seed in (1, 2, 3):
        rng = random.Random(seed)
        a = Assembler()
        _sweep_prologue(a, rng)
        for _ in range(8):
            a.emit(O.PREFETCH, _mem_operand(rng))
            _emit_int_case(a, rng, rng.choice((O.ADD, O.MOV, O.IMUL)))
            a.emit(O.PREFETCH, _mem_operand(rng, base=_FBUF_BASE))
            _emit_fp_case(a, rng, rng.choice((O.ADDSD, O.MOVSD)))
        a.emit(O.PREFETCH, Mem(base=_WBUF_BASE, disp=8 * 100_000))
        a.emit(O.PREFETCH, Mem(base=None, disp=8))
        _sweep_epilogue(a)
        image = a.assemble(entry="_start")
        assert_equivalent(lambda: load(image))


def test_stack_ops():
    """PUSH/POP with register, immediate and memory operands."""
    for seed in (1, 2, 3):
        rng = random.Random(seed)
        a = Assembler()
        _sweep_prologue(a, rng)
        depth = 0
        for _ in range(24):
            if depth and rng.random() < 0.5:
                target = Reg(rng.choice(_INT_REGS)) if rng.random() < 0.6 \
                    else _mem_operand(rng)
                a.emit(O.POP, target)
                depth -= 1
            else:
                roll = rng.random()
                if roll < 0.4:
                    source = Reg(rng.choice(_INT_REGS))
                elif roll < 0.5:
                    source = Reg(R.rsp)  # pushes the new rsp
                elif roll < 0.75:
                    source = Imm(rng.randint(-9999, 9999))
                else:
                    source = _mem_operand(rng)
                a.emit(O.PUSH, source)
                depth += 1
        if depth:
            a.emit(O.ADD, Reg(R.rsp), Imm(8 * depth))
        _sweep_epilogue(a)
        image = a.assemble(entry="_start")
        assert_equivalent(lambda: load(image))


def test_control_flow_ops():
    """Direct branches: backward loops and forward skips for every cc."""
    for seed in (1, 2):
        rng = random.Random(seed)
        a = Assembler()
        _sweep_prologue(a, rng)
        a.emit(O.MOV, Reg(R.rcx), Imm(rng.randint(5, 12)))
        a.emit(O.MOV, Reg(R.rax), Imm(0))
        a.label("loop")
        a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))
        a.emit(O.CALL, Label("helper"))
        # Forward skips, one per condition code.
        for k, cc in enumerate((O.JE, O.JNE, O.JL, O.JLE, O.JG, O.JGE)):
            skip = Label(f"skip{seed}_{k}")
            a.emit(O.CMP, Reg(R.rax), Imm(rng.randint(-20, 20)))
            a.emit(cc, skip)
            a.emit(O.XOR, Reg(R.rax), Imm(rng.randint(1, 255)))
            a.emit(O.JMP, Label(f"join{seed}_{k}"))
            a.label(f"skip{seed}_{k}")
            a.emit(O.ADD, Reg(R.rax), Imm(3))
            a.label(f"join{seed}_{k}")
        a.emit(O.DEC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(0))
        a.emit(O.JG, Label("loop"))
        a.emit(O.JMP, Label("done"))
        a.label("helper")
        a.emit(O.IMUL, Reg(R.rbx), Imm(3))
        a.emit(O.RET)
        a.label("done")
        _sweep_epilogue(a)
        image = a.assemble(entry="_start")
        assert_equivalent(lambda: load(image))


def test_indirect_ops():
    """JMPI/CALLI through registers and memory slots."""
    a = Assembler()
    slot = a.word("slot", 0)
    rng = random.Random(7)
    _sweep_prologue(a, rng)
    a.emit(O.MOV, Reg(_SCRATCH), Label("target1"))
    a.emit(O.JMPI, Reg(_SCRATCH))
    a.emit(O.MOV, Reg(R.rax), Imm(111))  # skipped
    a.label("target1")
    a.emit(O.MOV, Reg(_SCRATCH), Label("fn"))
    a.emit(O.CALLI, Reg(_SCRATCH))
    a.emit(O.MOV, Mem(disp=slot), Reg(_SCRATCH))
    a.emit(O.MOV, Reg(_SCRATCH), Label("fn"))
    a.emit(O.CALLI, Mem(disp=slot))
    a.emit(O.MOV, Mem(disp=slot), Label("target2"))
    a.emit(O.JMPI, Mem(disp=slot))
    a.emit(O.MOV, Reg(R.rax), Imm(222))  # skipped
    a.label("target2")
    a.emit(O.JMP, Label("done"))
    a.label("fn")
    a.emit(O.ADD, Reg(R.rax), Imm(17))
    a.emit(O.MOV, Reg(_SCRATCH), Label("fn"))
    a.emit(O.RET)
    a.label("done")
    _sweep_epilogue(a)
    image = a.assemble(entry="_start")
    assert_equivalent(lambda: load(image))


def test_syscall_and_halt_ops():
    """SYSCALL variants (IO, clock, jomp, exit), NOP and HLT."""
    a = Assembler()
    a.label("_start")
    for number, arg in ((syscalls.READ_INT, None),
                       (syscalls.PRINT_INT, 41),
                       (syscalls.PRINT_CHAR, 65)):
        if arg is not None:
            a.emit(O.MOV, Reg(R.rdi), Imm(arg))
        a.emit(O.MOV, Reg(R.rax), Imm(number))
        a.emit(O.SYSCALL)
    a.emit(O.NOP)
    a.emit(O.MOV, Reg(R.rdi), Imm(2))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.JOMP_BEGIN))
    a.emit(O.SYSCALL)
    a.emit(O.MOV, Reg(R.rcx), Imm(50))
    a.label("spin")
    a.emit(O.DEC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(0))
    a.emit(O.JG, Label("spin"))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.JOMP_END))
    a.emit(O.SYSCALL)
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.CLOCK))
    a.emit(O.SYSCALL)
    a.emit(O.MOV, Reg(R.rdi), Reg(R.rax))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)
    a.emit(O.HLT)
    image = a.assemble(entry="_start")
    assert_equivalent(lambda: load(image, inputs=[5]))

    b = Assembler()
    b.label("_start")
    b.emit(O.MOV, Reg(R.rdi), Imm(3))
    b.emit(O.MOV, Reg(R.rax), Imm(syscalls.EXIT))
    b.emit(O.SYSCALL)
    image_exit = b.assemble(entry="_start")
    assert_equivalent(lambda: load(image_exit))


def test_sweep_covers_every_opcode():
    """The sweep + structural tests above exercise the whole ISA.

    RTCALL is excluded: it is DBM-inserted only and covered by the
    runtime/profiling suites (and by test_interp_edge without a runtime).
    """
    covered = set(_INT_ALU) | set(_FP_ALU) | set(_PACKED_ALU)
    covered |= {O.PUSH, O.POP, O.JMP, O.JE, O.JNE, O.JL, O.JLE, O.JG,
                O.JGE, O.JMPI, O.CALL, O.CALLI, O.RET, O.SYSCALL, O.NOP,
                O.HLT, O.PREFETCH}
    missing = set(O) - covered - {O.RTCALL}
    assert not missing, sorted(op.name for op in missing)


# ---------------------------------------------------------------------------
# Linking and trace promotion
# ---------------------------------------------------------------------------

def test_linking_and_trace_stats():
    """A hot DOALL loop links its blocks and promotes the body to a trace."""
    source = """
    double xs[256];
    int main() {
        int i;
        int r;
        for (r = 0; r < 40; r++) {
            for (i = 0; i < 256; i++) { xs[i] = xs[i] + 1.5; }
        }
        print_double(xs[100]);
        return 0;
    }
    """
    image = compile_source(source, CompileOptions(opt_level=3))
    result = run_native(load(image))
    stats = result.stats
    assert stats["blocks_translated"] > 0
    assert stats["links_installed"] > 0
    assert stats["trace_entries"] > 0
    assert stats["trace_exits"] > 0
    assert stats["fallback_instructions"] == 0
    assert stats["instrumented_blocks"] == 0


def test_trace_budget_preserves_instruction_limit():
    """A self-loop trace must still honour the dispatcher's limit check."""
    from repro.dbm.interp import ExecutionLimitExceeded

    a = Assembler()
    a.label("_start")
    a.label("spin")
    a.emit(O.JMP, Label("spin"))
    image = a.assemble(entry="_start")
    with pytest.raises(ExecutionLimitExceeded):
        run_native(load(image), max_instructions=10_000)


# ---------------------------------------------------------------------------
# Original differential property tests (compiler-generated programs)
# ---------------------------------------------------------------------------

ARITH_OPS = ["+", "-", "*", "/", "%"]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), size=st.integers(4, 60),
       use_floats=st.booleans())
def test_differential_random_programs(seed, size, use_floats):
    """Random arithmetic programs agree between the paths."""
    rng = random.Random(seed)
    lines = ["int main() {"]
    int_vars = ["x0", "x1", "x2"]
    float_vars = ["f0", "f1"]
    lines.append("    int x0 = %d; int x1 = %d; int x2 = %d;"
                 % (rng.randint(-50, 50), rng.randint(1, 50),
                    rng.randint(1, 50)))
    if use_floats:
        lines.append("    double f0 = %.2f; double f1 = %.2f;"
                     % (rng.uniform(-4, 4), rng.uniform(0.5, 4)))
    for _ in range(size):
        kind = rng.random()
        if kind < 0.6:
            target = rng.choice(int_vars)
            a = rng.choice(int_vars)
            b = rng.choice(int_vars + [str(rng.randint(1, 9))])
            op = rng.choice(ARITH_OPS)
            if op in ("/", "%"):
                b = str(rng.randint(1, 9))
            lines.append(f"    {target} = {a} {op} {b};")
        elif kind < 0.8 and use_floats:
            target = rng.choice(float_vars)
            a = rng.choice(float_vars)
            op = rng.choice(["+", "-", "*"])
            lines.append(f"    {target} = {a} {op} {rng.uniform(0.5, 2):.2f};")
        else:
            v = rng.choice(int_vars)
            lines.append(f"    if ({v} > {rng.randint(-10, 10)}) "
                         f"{{ {v} = {v} - 1; }}")
    lines.append("    print_int(x0 + x1 * 3 + x2 * 7);")
    if use_floats:
        lines.append("    print_double(f0 + f1);")
    lines.append("    return 0;")
    lines.append("}")
    image = compile_source("\n".join(lines), CompileOptions(opt_level=2))
    assert_equivalent(lambda: load(image))


def _random_branchy_source(rng) -> str:
    """A random hot loop whose body is a chain of data-dependent branches.

    The shape the superblock former targets: a multi-block loop body with
    conditionals whose bias can flip mid-run (guard side exits) and an
    integer accumulator that makes the branch history input-dependent.
    """
    n = rng.randint(48, 128)
    reps = rng.randint(4, 8)
    lines = [
        f"double xs[{n}];",
        f"double ys[{n}];",
        "int main() {",
        "    int i; int r; int acc = 0;",
        f"    for (i = 0; i < {n}; i++) {{",
        f"        xs[i] = 0.25 * i - {rng.randint(0, 20)}.0;",
        "        ys[i] = 1.0 + 0.5 * i;",
        "    }",
        f"    for (r = 0; r < {reps}; r++) {{",
        f"        for (i = 0; i < {n}; i++) {{",
    ]
    for _ in range(rng.randint(1, 3)):
        cond = rng.choice([
            f"xs[i] > {rng.uniform(-10, 10):.2f}",
            f"i % {rng.randint(2, 5)} == {rng.randint(0, 1)}",
            f"acc % {rng.randint(2, 7)} < {rng.randint(1, 3)}",
        ])
        then = rng.choice([
            "xs[i] = xs[i] * 0.5 + ys[i];",
            f"acc += {rng.randint(1, 9)};",
            f"ys[i] = ys[i] + {rng.uniform(0.1, 2.0):.2f};",
        ])
        alt = rng.choice([
            f"xs[i] = xs[i] + {rng.uniform(-1.0, 1.0):.2f};",
            f"acc -= {rng.randint(1, 5)};",
            "xs[i] = ys[i] - xs[i];",
        ])
        if rng.random() < 0.5:
            lines.append(
                f"            if ({cond}) {{ {then} }} else {{ {alt} }}")
        else:
            lines.append(f"            if ({cond}) {{ {then} }}")
    lines += [
        "        }",
        "    }",
        "    print_int(acc);",
        f"    print_double(xs[{rng.randint(0, 40)}]);",
        "    print_double(ys[3]);",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_superblock_differential_random_branchy_cfg(seed):
    """Random branchy-CFG loops: superblock state bit-identical to reference.

    ``superblock_threshold = 1`` (inside ``run_with_path``) promotes every
    observed loop head immediately, so the stitched fast path — guards,
    side exits, register promotion and the exit-time cycle accounting —
    carries essentially the whole run.
    """
    rng = random.Random(seed)
    source = _random_branchy_source(rng)
    image = compile_source(source, CompileOptions(opt_level=3))
    ref_ctx, ref_machine, _ = run_with_path(load(image), "reference")
    sb_ctx, sb_machine, _ = run_with_path(load(image), "superblock")
    assert _state(sb_ctx, sb_machine) == _state(ref_ctx, ref_machine)


def test_differential_loops_and_calls():
    source = """
    double xs[64];
    int helper(int a, int b) { return a * 3 + b; }
    int main() {
        int i;
        int acc = 0;
        for (i = 0; i < 64; i++) {
            xs[i] = 0.5 * i;
            acc += helper(i, acc % 11);
        }
        double total = 0.0;
        for (i = 0; i < 64; i++) { total += xs[i]; }
        print_int(acc);
        print_double(total);
        print_double(sqrt(64.0));
        return 0;
    }
    """
    image = compile_source(source, CompileOptions(opt_level=3))
    assert_equivalent(lambda: load(image))


def test_differential_wrapping():
    """Overflow wrap behaviour must match exactly."""
    a = Assembler()
    a.label("_start")
    a.emit(O.MOV, Reg(R.rax), Imm(2**62))
    a.emit(O.ADD, Reg(R.rax), Reg(R.rax))
    a.emit(O.ADD, Reg(R.rax), Imm(-1))
    a.emit(O.IMUL, Reg(R.rax), Imm(3))
    a.emit(O.INC, Reg(R.rax))
    a.emit(O.MOV, Reg(R.rdi), Reg(R.rax))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)
    a.emit(O.RET)
    image = a.assemble(entry="_start")
    assert_equivalent(lambda: load(image))
