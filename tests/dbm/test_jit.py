"""Differential tests: the closure JIT must match the reference interpreter.

The fast path (repro.dbm.jit) re-implements the hot opcode semantics; any
divergence from the reference ``_exec`` dispatch would corrupt execution
silently.  These tests run identical programs through both paths — the
slow path is forced by installing a no-op memory hook — and require
bit-identical outcomes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbm.executor import run_native
from repro.dbm.interp import Interpreter
from repro.dbm.machine import Machine, make_main_context
from repro.dbm.blocks import discover_block
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source


def run_with_path(process, fast: bool):
    """Execute a process forcing the fast or the reference path."""
    machine = Machine()
    machine.memory.load_words(process.initial_data())
    machine.inputs = list(process.inputs)
    ctx = make_main_context(process.entry, machine.memory)
    interp = Interpreter(machine, process)
    if not fast:
        interp.mem_hook = lambda *args: None  # disables the closure path
    cache = {}
    pc = ctx.pc
    steps = 0
    while pc is not None:
        block = cache.get(pc)
        if block is None:
            block = cache[pc] = discover_block(process, pc)
        pc = interp.execute_block(ctx, block)
        steps += 1
        assert steps < 3_000_000
    return ctx, machine


def assert_equivalent(process):
    fast_ctx, fast_machine = run_with_path(process, fast=True)
    slow_ctx, slow_machine = run_with_path(process, fast=False)
    assert fast_machine.outputs == slow_machine.outputs
    assert fast_machine.memory.snapshot() == slow_machine.memory.snapshot()
    assert fast_ctx.gregs == slow_ctx.gregs
    assert fast_ctx.fregs == slow_ctx.fregs
    assert fast_ctx.cycles == slow_ctx.cycles
    assert fast_ctx.instructions == slow_ctx.instructions
    assert fast_ctx.exit_code == slow_ctx.exit_code


ARITH_OPS = ["+", "-", "*", "/", "%"]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), size=st.integers(4, 60),
       use_floats=st.booleans())
def test_differential_random_programs(seed, size, use_floats):
    """Random arithmetic programs agree between the two paths."""
    import random

    rng = random.Random(seed)
    lines = ["int main() {"]
    int_vars = ["x0", "x1", "x2"]
    float_vars = ["f0", "f1"]
    lines.append("    int x0 = %d; int x1 = %d; int x2 = %d;"
                 % (rng.randint(-50, 50), rng.randint(1, 50),
                    rng.randint(1, 50)))
    if use_floats:
        lines.append("    double f0 = %.2f; double f1 = %.2f;"
                     % (rng.uniform(-4, 4), rng.uniform(0.5, 4)))
    for _ in range(size):
        kind = rng.random()
        if kind < 0.6:
            target = rng.choice(int_vars)
            a = rng.choice(int_vars)
            b = rng.choice(int_vars + [str(rng.randint(1, 9))])
            op = rng.choice(ARITH_OPS)
            if op in ("/", "%"):
                b = str(rng.randint(1, 9))
            lines.append(f"    {target} = {a} {op} {b};")
        elif kind < 0.8 and use_floats:
            target = rng.choice(float_vars)
            a = rng.choice(float_vars)
            op = rng.choice(["+", "-", "*"])
            lines.append(f"    {target} = {a} {op} {rng.uniform(0.5, 2):.2f};")
        else:
            v = rng.choice(int_vars)
            lines.append(f"    if ({v} > {rng.randint(-10, 10)}) "
                         f"{{ {v} = {v} - 1; }}")
    lines.append("    print_int(x0 + x1 * 3 + x2 * 7);")
    if use_floats:
        lines.append("    print_double(f0 + f1);")
    lines.append("    return 0;")
    lines.append("}")
    image = compile_source("\n".join(lines), CompileOptions(opt_level=2))
    assert_equivalent(load(image))


def test_differential_loops_and_calls():
    source = """
    double xs[64];
    int helper(int a, int b) { return a * 3 + b; }
    int main() {
        int i;
        int acc = 0;
        for (i = 0; i < 64; i++) {
            xs[i] = 0.5 * i;
            acc += helper(i, acc % 11);
        }
        double total = 0.0;
        for (i = 0; i < 64; i++) { total += xs[i]; }
        print_int(acc);
        print_double(total);
        print_double(sqrt(64.0));
        return 0;
    }
    """
    image = compile_source(source, CompileOptions(opt_level=3))
    assert_equivalent(load(image))


def test_differential_wrapping():
    """Overflow wrap behaviour must match exactly."""
    a = Assembler()
    from repro.isa import Imm, Opcode as O, Reg
    from repro.isa.operands import Label
    from repro.isa.registers import R
    from repro.jbin import syscalls

    a.label("_start")
    a.emit(O.MOV, Reg(R.rax), Imm(2**62))
    a.emit(O.ADD, Reg(R.rax), Reg(R.rax))
    a.emit(O.ADD, Reg(R.rax), Imm(-1))
    a.emit(O.IMUL, Reg(R.rax), Imm(3))
    a.emit(O.INC, Reg(R.rax))
    a.emit(O.MOV, Reg(R.rdi), Reg(R.rax))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)
    a.emit(O.RET)
    assert_equivalent(load(a.assemble(entry="_start")))
