"""Tests for the two iteration-scheduling policies (paper II-E)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.induction import chunk_bounds, round_robin_bounds
from repro.dbm.executor import run_native
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode

# Triangular workload: outer iteration i costs O(i) -- contiguous chunks
# load the last thread with almost half the work.  The inner sum stays in
# a register (one memory write per outer iteration, so the false-sharing
# penalty of interleaved blocks stays negligible).
IMBALANCED = """
int n = 192;
double acc[192];

int main() {
    int i;
    int j;
    for (i = 0; i < n; i++) {
        double total = 0.0;
        for (j = 0; j < i; j++) {
            total += 0.5 * j;
        }
        acc[i] = total;
    }
    double answer = 0.0;
    for (i = 0; i < n; i++) { answer += acc[i]; }
    print_double(answer);
    return 0;
}
"""


class TestRoundRobinBounds:
    def test_blocks_cover_space_in_order(self):
        assignments = round_robin_bounds(20, 3, block=4)
        flattened = sorted(b for blocks in assignments for b in blocks)
        assert flattened == [(0, 4), (4, 8), (8, 12), (12, 16), (16, 20)]
        assert assignments[0] == [(0, 4), (12, 16)]
        assert assignments[1] == [(4, 8), (16, 20)]
        assert assignments[2] == [(8, 12)]

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            round_robin_bounds(10, 2, block=0)

    @given(trips=st.integers(0, 5000), threads=st.integers(1, 8),
           block=st.integers(1, 16))
    def test_partition_property(self, trips, threads, block):
        assignments = round_robin_bounds(trips, threads, block)
        assert len(assignments) == threads
        covered = []
        for blocks in assignments:
            covered.extend(blocks)
        covered.sort()
        position = 0
        for start, end in covered:
            assert start == position
            assert end > start
            position = end
        assert position == trips

    @given(trips=st.integers(1, 2000), threads=st.integers(1, 8))
    def test_chunk_and_rr_cover_same_space(self, trips, threads):
        chunk_total = sum(e - s for s, e in chunk_bounds(trips, threads))
        rr_total = sum(e - s for blocks in
                       round_robin_bounds(trips, threads)
                       for s, e in blocks)
        assert chunk_total == rr_total == trips


class TestRoundRobinExecution:
    @pytest.fixture(scope="class")
    def image(self):
        return compile_source(IMBALANCED, CompileOptions(opt_level=2))

    def run_policy(self, image, scheduling, rr_block=8):
        janus = Janus(image, JanusConfig(n_threads=4,
                                         coverage_threshold=0.0,
                                         scheduling=scheduling,
                                         rr_block=rr_block))
        training = janus.train()
        return janus.run(SelectionMode.JANUS, training=training)

    def test_round_robin_preserves_output(self, image):
        native = run_native(load(image))
        result = self.run_policy(image, "round_robin")
        assert len(result.outputs) == len(native.outputs)
        (k1, v1), = native.outputs
        (k2, v2), = result.outputs
        assert abs(v1 - v2) <= 1e-9 * max(1.0, abs(v1))
        assert result.stats["loop_invocations_parallel"] >= 1

    def test_round_robin_balances_triangular_load(self, image):
        chunked = self.run_policy(image, "chunk")
        robin = self.run_policy(image, "round_robin", rr_block=4)
        # Both parallelise; round-robin's slowest thread does ~1/4 of the
        # triangle instead of ~7/16: meaningfully faster overall.
        assert chunked.stats["loop_invocations_parallel"] >= 1
        assert robin.stats["parallel_cycles"] < \
            0.8 * chunked.stats["parallel_cycles"]
