"""Interpreter semantics tests over small assembled programs."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin import layout, syscalls
from repro.dbm.interp import JXRuntimeError

from tests.helpers import floats, ints, run_asm

RAX, RBX, RCX, RDX = Reg(R.rax), Reg(R.rbx), Reg(R.rcx), Reg(R.rdx)
RDI, RSI = Reg(R.rdi), Reg(R.rsi)
XMM0, XMM1 = Reg(R.xmm0), Reg(R.xmm1)


def emit_print_int(a, src):
    """Inline print of an integer register (clobbers rax/rdi)."""
    a.emit(O.MOV, RDI, src)
    a.emit(O.MOV, RAX, Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)


def emit_print_f64(a, src=None):
    a.emit(O.MOV, RAX, Imm(syscalls.PRINT_F64))
    a.emit(O.SYSCALL)


def test_mov_add_print():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(40))
        a.emit(O.ADD, RAX, Imm(2))
        emit_print_int(a, RAX)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [42]


def test_loop_sum():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(0))
        a.emit(O.MOV, RCX, Imm(1))
        a.label("loop")
        a.emit(O.ADD, RAX, RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(10))
        a.emit(O.JLE, Label("loop"))
        emit_print_int(a, RAX)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [55]


def test_memory_array_indexing():
    def build(a):
        a.word("arr", 10, 20, 30, 40)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(2))
        a.emit(O.MOV, RAX, Mem(index=R.rcx, scale=8, disp=Label("arr")))
        emit_print_int(a, RAX)
        # store then reload through a base register
        a.emit(O.MOV, RBX, Imm(layout.DATA_BASE))
        a.emit(O.MOV, Mem(base=R.rbx, disp=24), Imm(99))
        a.emit(O.MOV, RDX, Mem(base=R.rbx, disp=24))
        emit_print_int(a, RDX)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [30, 99]


def test_call_ret_and_stack():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RDI, Imm(5))
        a.emit(O.CALL, Label("double_it"))
        emit_print_int(a, RAX)
        a.emit(O.RET)
        a.label("double_it")
        a.emit(O.MOV, RAX, RDI)
        a.emit(O.ADD, RAX, RDI)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [10]


def test_recursive_factorial():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RDI, Imm(6))
        a.emit(O.CALL, Label("fact"))
        emit_print_int(a, RAX)
        a.emit(O.RET)
        a.label("fact")
        a.emit(O.CMP, RDI, Imm(1))
        a.emit(O.JG, Label("recurse"))
        a.emit(O.MOV, RAX, Imm(1))
        a.emit(O.RET)
        a.label("recurse")
        a.emit(O.PUSH, RDI)
        a.emit(O.DEC, RDI)
        a.emit(O.CALL, Label("fact"))
        a.emit(O.POP, RDI)
        a.emit(O.IMUL, RAX, RDI)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [720]


def test_signed_division_and_modulo():
    cases = [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)]

    for a_val, b_val, want_q, want_r in cases:
        def build(a, a_val=a_val, b_val=b_val):
            a.label("_start")
            a.emit(O.MOV, RAX, Imm(a_val))
            a.emit(O.MOV, RBX, RAX)
            a.emit(O.IDIV, RAX, Imm(b_val))
            a.emit(O.IMOD, RBX, Imm(b_val))
            emit_print_int(a, RAX)
            emit_print_int(a, RBX)
            a.emit(O.RET)

        assert ints(run_asm(build)) == [want_q, want_r]


def test_division_by_zero_raises():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(1))
        a.emit(O.IDIV, RAX, Imm(0))
        a.emit(O.RET)

    with pytest.raises(JXRuntimeError):
        run_asm(build)


def test_shifts():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(1))
        a.emit(O.SHL, RAX, Imm(10))
        emit_print_int(a, RAX)
        a.emit(O.MOV, RBX, Imm(-16))
        a.emit(O.SAR, RBX, Imm(2))
        emit_print_int(a, RBX)
        a.emit(O.MOV, RCX, Imm(-1))
        a.emit(O.SHR, RCX, Imm(60))
        emit_print_int(a, RCX)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [1024, -4, 15]


def test_wrapping_arithmetic():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(2**62))
        a.emit(O.ADD, RAX, RAX)  # overflows to -2^63
        emit_print_int(a, RAX)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [-(2**63)]


def test_cmov():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(1))
        a.emit(O.MOV, RBX, Imm(2))
        a.emit(O.MOV, RCX, Imm(111))
        a.emit(O.CMP, RAX, RBX)
        a.emit(O.CMOVL, RCX, Imm(222))   # taken: 1 < 2
        emit_print_int(a, RCX)
        a.emit(O.CMP, RBX, RAX)
        a.emit(O.CMOVL, RCX, Imm(333))   # not taken
        emit_print_int(a, RCX)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [222, 222]


def test_float_arithmetic():
    def build(a):
        a.double("x", 1.5)
        a.double("y", 2.25)
        a.label("_start")
        a.emit(O.MOVSD, XMM0, Mem(disp=Label("x")))
        a.emit(O.MOVSD, XMM1, Mem(disp=Label("y")))
        a.emit(O.ADDSD, XMM0, XMM1)
        a.emit(O.MULSD, XMM0, XMM1)
        emit_print_f64(a)
        a.emit(O.RET)

    assert floats(run_asm(build)) == [pytest.approx((1.5 + 2.25) * 2.25)]


def test_float_conversion_and_compare():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(7))
        a.emit(O.CVTSI2SD, XMM0, RAX)
        a.emit(O.CVTTSD2SI, RBX, XMM0)
        emit_print_int(a, RBX)
        a.emit(O.MOV, RCX, Imm(3))
        a.emit(O.CVTSI2SD, XMM1, RCX)
        a.emit(O.UCOMISD, XMM0, XMM1)
        a.emit(O.JG, Label("bigger"))
        emit_print_int(a, Imm(0))
        a.emit(O.RET)
        a.label("bigger")
        emit_print_int(a, Imm(1))
        a.emit(O.RET)

    assert ints(run_asm(build)) == [7, 1]


def test_packed_sse_ops():
    def build(a):
        a.double("va", 1.0, 2.0)
        a.double("vb", 10.0, 20.0)
        a.space("vc", 2)
        a.label("_start")
        a.emit(O.MOVAPD, XMM0, Mem(disp=Label("va")))
        a.emit(O.ADDPD, XMM0, Mem(disp=Label("vb")))
        a.emit(O.MOVAPD, Mem(disp=Label("vc")), XMM0)
        a.emit(O.MOVSD, XMM0, Mem(disp=Label("vc")))
        emit_print_f64(a)
        from repro.isa.operands import LabelRef
        a.emit(O.MOVSD, XMM0, Mem(disp=LabelRef("vc", 8)))
        emit_print_f64(a)
        a.emit(O.RET)

    assert floats(run_asm(build)) == [11.0, 22.0]


def test_packed_avx_ops():
    def build(a):
        a.double("va", 1.0, 2.0, 3.0, 4.0)
        a.double("vb", 2.0, 2.0, 2.0, 2.0)
        a.space("vc", 4)
        a.label("_start")
        a.emit(O.VMOVAPD, XMM0, Mem(disp=Label("va")))
        a.emit(O.VMULPD, XMM0, Mem(disp=Label("vb")))
        a.emit(O.VMOVAPD, Mem(disp=Label("vc")), XMM0)
        from repro.isa.operands import LabelRef
        for k in range(4):
            a.emit(O.MOVSD, XMM0, Mem(disp=LabelRef("vc", 8 * k)))
            emit_print_f64(a)
        a.emit(O.RET)

    assert floats(run_asm(build)) == [2.0, 4.0, 6.0, 8.0]


def test_read_int_and_exit_code():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(syscalls.READ_INT))
        a.emit(O.SYSCALL)
        a.emit(O.MOV, RDI, RAX)
        a.emit(O.MOV, RAX, Imm(syscalls.EXIT))
        a.emit(O.SYSCALL)

    result = run_asm(build, inputs=[42])
    assert result.exit_code == 42


def test_xorpd_zeroing():
    def build(a):
        a.double("x", 5.0)
        a.label("_start")
        a.emit(O.MOVSD, XMM0, Mem(disp=Label("x")))
        a.emit(O.XORPD, XMM0, XMM0)
        emit_print_f64(a)
        a.emit(O.RET)

    assert floats(run_asm(build)) == [0.0]


def test_cycles_and_instruction_accounting():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(0))
        a.emit(O.ADD, RAX, Imm(1))
        a.emit(O.RET)

    result = run_asm(build)
    assert result.instructions == 3
    assert result.cycles >= 3


def test_neg_not():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, RAX, Imm(5))
        a.emit(O.NEG, RAX)
        emit_print_int(a, RAX)
        a.emit(O.MOV, RBX, Imm(0))
        a.emit(O.NOT, RBX)
        emit_print_int(a, RBX)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [-5, -1]
