"""Superblock tier: formation, guarded exits, deopt kinds and budget plumbing.

Every way control can leave a superblock is forced at least once here:

* **guard side exit** — a conditional branch goes against the biased path
  (``test_guard_side_exits``);
* **budget bailout** — the trace budget runs out mid-loop
  (``test_budget_bailouts``);
* **legality deopt** — a memory hook is installed between warm-up and the
  next superblock entry, so the back-edge legality re-check must spill and
  hand the head back to the dispatcher
  (``test_hook_installation_deopts``).

Each exit restores full architectural state; the tests compare against a
superblocks-disabled twin (or a reference-interpreter twin) bit for bit,
including cycle and instruction accounting.
"""

import struct

from repro.dbm.blocks import discover_block
from repro.dbm.executor import run_native
from repro.dbm.interp import Interpreter
from repro.dbm.machine import Machine, make_main_context
from repro.dbm.modifier import JanusDBM
from repro.isa import Imm, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R, reg_id
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import JanusConfig

BRANCHY = """
double xs[256];
double ys[256];
int main() {{
    int i;
    int r;
    for (i = 0; i < 256; i++) {{ ys[i] = 0.125 * i; xs[i] = 1.0; }}
    for (r = 0; r < 40; r++) {{
        for (i = 0; i < 256; i++) {{
            if ({condition}) {{
                xs[i] = xs[i] * 0.5 + ys[i];
            }} else {{
                xs[i] = xs[i] + ys[i] + 1.0;
            }}
        }}
    }}
    print_double(xs[7]);
    return 0;
}}
"""


def _image(condition: str):
    return compile_source(BRANCHY.format(condition=condition),
                          CompileOptions(opt_level=3))


def _run(image, threshold=1, budget=None, enabled=True, inputs=None):
    """Run under the trace-cache dispatcher with superblock knobs."""
    from repro.dbm.tracecache import run_loop

    process = load(image, inputs=inputs)
    machine = Machine()
    machine.memory.load_words(process.initial_data())
    machine.inputs = list(process.inputs)
    ctx = make_main_context(process.entry, machine.memory)
    interp = Interpreter(machine, process)
    interp.superblocks_enabled = enabled
    interp.superblock_threshold = threshold
    if budget is not None:
        interp.trace_budget = budget
    cache = {}

    def lookup(pc, _ctx):
        block = cache.get(pc)
        if block is None:
            block = cache[pc] = discover_block(process, pc)
        return block

    run_loop(interp, ctx, ctx.pc, lookup)
    return ctx, machine, interp, cache


def _bits(value):
    if isinstance(value, float):
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    return value


def _state(ctx, machine):
    return {
        "gregs": list(ctx.gregs),
        "fregs": [_bits(v) for v in ctx.fregs],
        "flags": ctx.flags,
        "cycles": ctx.cycles,
        "instructions": ctx.instructions,
        "exit_code": ctx.exit_code,
        "outputs": [(kind, _bits(v)) for kind, v in machine.outputs],
        "memory": machine.memory.snapshot(),
    }


def _assert_matches_disabled(image, **kwargs):
    ctx, machine, interp, _ = _run(image, **kwargs)
    ref_ctx, ref_machine, _ri, _rc = _run(image, enabled=False)
    assert _state(ctx, machine) == _state(ref_ctx, ref_machine)
    return interp.sb_stats


# ---------------------------------------------------------------------------
# Formation and counters
# ---------------------------------------------------------------------------

def test_formation_and_counters():
    """A hot branchy loop forms a superblock and runs mostly inside it."""
    result = run_native(load(_image("xs[i] > 0.5")))
    stats = result.stats
    assert stats["superblock_formed"] >= 1
    assert stats["superblock_entries"] > 0
    # The stitched loop spins inside compiled code: entries are bounded by
    # exits (each entry ends in exactly one exit of some kind).
    exits = (stats["superblock_side_exits"] + stats["superblock_bailouts"]
             + stats["superblock_deopts"])
    assert exits == stats["superblock_entries"]
    assert stats["superblock_deopts"] == 0  # no hook was ever installed


def test_superblock_state_matches_disabled_tier():
    """Same final architectural state with and without the superblock tier."""
    stats = _assert_matches_disabled(_image("xs[i] > 0.5"), threshold=1)
    assert stats.formed >= 1
    assert stats.entries > 0


# ---------------------------------------------------------------------------
# Exit kind 1: guard side exits
# ---------------------------------------------------------------------------

def test_guard_side_exits():
    """A branch whose bias fails late in the loop takes guard side exits.

    ``i < 192`` holds for 3/4 of the iteration space, so the biased path
    follows the then-branch and the last quarter of every sweep leaves
    through the guard — state must still be bit-identical.
    """
    stats = _assert_matches_disabled(_image("i < 192"), threshold=1)
    assert stats.formed >= 1
    assert stats.side_exits >= 40  # at least one per outer rep


# ---------------------------------------------------------------------------
# Exit kind 2: budget bailouts
# ---------------------------------------------------------------------------

def test_budget_bailouts():
    """A tiny trace budget forces bailouts without changing results."""
    stats = _assert_matches_disabled(
        _image("xs[i] > 0.5"), threshold=1, budget=4)
    assert stats.formed >= 1
    assert stats.bailouts > 0


def test_budget_is_baked_into_generated_code():
    image = _image("xs[i] > 0.5")
    _ctx, _machine, _interp, cache = _run(image, threshold=1, budget=7)
    sources = [block.jit_super.__jit_source__
               for block in cache.values() if block.jit_super is not None]
    assert sources
    assert any("    n = 7\n" in source for source in sources)


# ---------------------------------------------------------------------------
# Exit kind 3: legality deopt (mid-run hook installation)
# ---------------------------------------------------------------------------

def _two_block_loop_image():
    """A pure-register two-block loop: ADD/guard block + DEC/back-edge block.

    No memory traffic inside the loop, so a reference twin can replay an
    iteration from any register state without sharing the machine.
    """
    a = Assembler()
    a.label("_start")
    a.emit(O.MOV, Reg(R.rcx), Imm(200))
    a.emit(O.MOV, Reg(R.rax), Imm(0))
    a.label("loop")
    a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rax), Imm(1000000))
    a.emit(O.JG, Label("escape"))        # never taken: the guarded exit
    a.emit(O.DEC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(0))
    a.emit(O.JG, Label("loop"))          # the back edge
    a.label("escape")
    a.emit(O.HLT)
    return a.assemble(entry="_start")


def test_hook_installation_deopts():
    """Installing a hook after warm-up deopts at the first back edge.

    The dispatcher would never enter a superblock with a hook installed
    (the fast path is illegal), but a hook can appear *while* a superblock
    spins — modelled here by installing one between entries and invoking
    the warm runner directly.  The superblock must complete exactly one
    iteration, spill everything and return the head block for the
    dispatcher to re-dispatch on the instrumented tier.
    """
    image = _two_block_loop_image()
    ctx, _machine, interp, cache = _run(image, threshold=4)
    heads = [block for block in cache.values()
             if block.jit_super is not None]
    assert len(heads) == 1
    head = heads[0]
    assert interp.sb_stats.deopts == 0

    rax, rcx = reg_id("rax"), reg_id("rcx")

    def prime(target_ctx):
        target_ctx.gregs[rax] = 5
        target_ctx.gregs[rcx] = 37
        target_ctx.flags = 1          # as left by the back-edge JG
        target_ctx.cycles = 0
        target_ctx.instructions = 0

    # The mid-run hook: any non-None hook makes the fast path illegal.
    interp.mem_hook = lambda *args: None
    prime(ctx)
    entries = interp.sb_stats.entries
    returned = head.jit_super(ctx)

    assert returned is head
    assert interp.sb_stats.deopts == 1
    assert interp.sb_stats.entries == entries + 1

    # Reference twin: one loop iteration from the same register state.
    process = load(image)
    machine2 = Machine()
    machine2.memory.load_words(process.initial_data())
    interp2 = Interpreter(machine2, process)
    ctx2 = make_main_context(head.start, machine2.memory)
    prime(ctx2)
    pc = head.start
    while True:
        pc = interp2.execute_block_reference(
            ctx2, discover_block(process, pc))
        if pc == head.start:
            break

    assert list(ctx.gregs) == list(ctx2.gregs)
    assert ctx.flags == ctx2.flags
    assert ctx.cycles == ctx2.cycles
    assert ctx.instructions == ctx2.instructions


# ---------------------------------------------------------------------------
# Formation limits
# ---------------------------------------------------------------------------

def test_formation_fails_on_syscall_in_body():
    """A loop body containing a SYSCALL cannot be stitched."""
    from repro.jbin import syscalls

    a = Assembler()
    a.label("_start")
    a.emit(O.MOV, Reg(R.rcx), Imm(40))
    a.emit(O.MOV, Reg(R.rbx), Imm(0))
    a.label("loop")
    a.emit(O.ADD, Reg(R.rbx), Reg(R.rcx))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.CLOCK))
    a.emit(O.SYSCALL)
    a.emit(O.DEC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(0))
    a.emit(O.JG, Label("loop"))
    a.emit(O.HLT)
    image = a.assemble(entry="_start")
    _ctx, _machine, interp, cache = _run(image, threshold=2)
    assert interp.sb_stats.formed == 0
    assert interp.sb_stats.formation_failures >= 1
    assert all(block.jit_super is None for block in cache.values())


# ---------------------------------------------------------------------------
# Budget plumbing
# ---------------------------------------------------------------------------

def test_trace_budget_plumbing():
    """JanusConfig.trace_budget reaches the interpreter via JanusDBM."""
    from repro.dbm.jit import TRACE_BUDGET

    assert JanusConfig().trace_budget == TRACE_BUDGET
    image = _image("xs[i] > 0.5")
    dbm = JanusDBM(load(image), trace_budget=64)
    assert dbm.interp.trace_budget == 64
    # Default: no override keeps the module constant.
    assert JanusDBM(load(image)).interp.trace_budget == TRACE_BUDGET
