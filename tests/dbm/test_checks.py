"""Unit tests for runtime array-bounds check evaluation (paper Fig. 4)."""

from hypothesis import given, strategies as st

from repro.dbm.checks import evaluate_bounds_check, ranges_overlap, side_range
from repro.isa.registers import R
from repro.rewrite.metadata import BoundsCheckDesc, RangeSide


def reader(values):
    return lambda var: values[var]


class TestSideRange:
    def test_simple_stride(self):
        # one access: 8*theta + 0, 1 lane; theta in [0, 9]
        side = RangeSide(base_form=[(0x1000, ())], extents=[(8, 0, 1)])
        lo, hi = side_range(side, reader({}), 0, 9)
        assert (lo, hi) == (0x1000, 0x1000 + 9 * 8 + 8)

    def test_downward_iteration(self):
        side = RangeSide(base_form=[(0x1000, ())], extents=[(8, 0, 1)])
        lo, hi = side_range(side, reader({}), 9, 0)  # first=9, last=0
        assert (lo, hi) == (0x1000, 0x1000 + 80)

    def test_register_base(self):
        side = RangeSide(base_form=[(1, ((("r", R.r8),)))],
                         extents=[(8, 16, 2)])
        lo, hi = side_range(side, reader({R.r8: 0x2000}), 0, 3)
        assert lo == 0x2000 + 16
        assert hi == 0x2000 + 16 + 3 * 8 + 16  # last theta + 2 lanes

    def test_multiple_accesses_take_union(self):
        side = RangeSide(base_form=[(0x1000, ())],
                         extents=[(8, 0, 1), (8, -8, 1)])
        lo, hi = side_range(side, reader({}), 1, 4)
        assert lo == 0x1000 + 0  # -8 + 8*1
        assert hi == 0x1000 + 4 * 8 + 8


class TestOverlap:
    def test_disjoint(self):
        assert not ranges_overlap((0, 10), (10, 20))
        assert not ranges_overlap((10, 20), (0, 10))

    def test_overlap(self):
        assert ranges_overlap((0, 11), (10, 20))
        assert ranges_overlap((5, 6), (0, 100))

    @given(a=st.integers(0, 100), la=st.integers(1, 50),
           b=st.integers(0, 100), lb=st.integers(1, 50))
    def test_matches_set_semantics(self, a, la, b, lb):
        expected = bool(set(range(a, a + la)) & set(range(b, b + lb)))
        assert ranges_overlap((a, a + la), (b, b + lb)) == expected


class TestEvaluateBoundsCheck:
    def _desc(self, write_base, other_base):
        return BoundsCheckDesc(
            loop_id=0,
            write_side=RangeSide(base_form=[(write_base, ())],
                                 extents=[(8, 0, 1)]),
            other_side=RangeSide(base_form=[(other_base, ())],
                                 extents=[(8, 0, 1)]),
        )

    def test_distinct_arrays_pass(self):
        desc = self._desc(0x1000, 0x2000)
        assert evaluate_bounds_check(desc, reader({}), 0, 100)

    def test_overlapping_arrays_fail(self):
        desc = self._desc(0x1000, 0x1008)
        assert not evaluate_bounds_check(desc, reader({}), 0, 100)

    def test_short_iteration_space_passes(self):
        # Arrays 64 words apart, 4 iterations: no overlap.
        desc = self._desc(0x1000, 0x1000 + 64 * 8)
        assert evaluate_bounds_check(desc, reader({}), 0, 3)
        # 100 iterations: overlap.
        assert not evaluate_bounds_check(desc, reader({}), 0, 99)
