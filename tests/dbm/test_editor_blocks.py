"""Unit tests for block discovery and the rewrite block editor."""

import pytest

from repro.isa import Imm, Instruction, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.dbm.blocks import discover_block
from repro.dbm.editor import BlockEditor, EditError
from repro.dbm.rtcalls import RTCallID


def make_process():
    a = Assembler()
    a.label("_start")
    a.emit(O.MOV, Reg(R.rax), Imm(1))      # 0
    a.emit(O.ADD, Reg(R.rax), Imm(2))      # 1
    a.emit(O.CALL, Label("helper"))        # 2 - ends a DBM block
    a.emit(O.MOV, Reg(R.rbx), Reg(R.rax))  # 3
    a.emit(O.CMP, Reg(R.rbx), Imm(0))      # 4
    a.emit(O.JG, Label("_start"))          # 5 - ends a block
    a.emit(O.RET)
    a.label("helper")
    a.emit(O.RET)
    return load(a.assemble(entry="_start"))


class TestDiscoverBlock:
    def test_block_ends_at_call(self):
        process = make_process()
        block = discover_block(process, process.entry)
        assert block.terminator.opcode is O.CALL
        assert len(block) == 3
        assert block.end == block.terminator.address + \
            block.terminator.size

    def test_block_ends_at_cond_branch(self):
        process = make_process()
        first = discover_block(process, process.entry)
        second = discover_block(process, first.end)
        assert second.terminator.opcode is O.JG
        assert len(second) == 3

    def test_stop_addresses_split_blocks(self):
        process = make_process()
        first = discover_block(process, process.entry)
        # Split before the second instruction.
        split_at = first.instructions[1].address
        block = discover_block(process, process.entry,
                               stop_addresses={split_at})
        assert len(block) == 1
        assert block.end == split_at

    def test_cost_positive(self):
        process = make_process()
        assert discover_block(process, process.entry).cost > 0


class TestBlockEditor:
    def _editor(self):
        process = make_process()
        return BlockEditor(discover_block(process, process.entry))

    def test_insert_before(self):
        editor = self._editor()
        target = editor.instructions[1].address
        editor.insert_before(target, editor.rtcall(RTCallID.LOOP_ENTER, 3))
        block = editor.finish()
        assert block.instructions[1].opcode is O.RTCALL
        assert block.instructions[1].size == 0
        assert block.instructions[2].opcode is O.ADD

    def test_insert_at_anchor_control_goes_before(self):
        editor = self._editor()
        call_addr = editor.instructions[-1].address
        editor.insert_at_anchor(call_addr, editor.rtcall(1, 0))
        assert editor.instructions[-2].opcode is O.RTCALL
        assert editor.instructions[-1].opcode is O.CALL

    def test_insert_at_anchor_noncontrol_goes_after_in_order(self):
        editor = self._editor()
        anchor = editor.instructions[0].address
        editor.insert_at_anchor(anchor, editor.rtcall(1, 1))
        editor.insert_at_anchor(anchor, editor.rtcall(1, 2))
        ops = [i.operands[1].value for i in editor.instructions
               if i.opcode is O.RTCALL]
        assert ops == [1, 2]
        assert editor.instructions[0].opcode is O.MOV

    def test_index_of_skips_inserted_pseudos(self):
        editor = self._editor()
        target = editor.instructions[0].address
        editor.insert_at_start(editor.rtcall(1, 0))
        # The pseudo inherits the address but must not shadow the real
        # instruction for rule targeting.
        assert editor.instructions[editor.index_of(target)].opcode is O.MOV

    def test_replace_preserves_identity(self):
        editor = self._editor()
        target = editor.instructions[1]
        replacement = Instruction(O.ADD, (Reg(R.rax), Imm(99)))
        editor.replace(target.address, replacement)
        replaced = editor.instructions[1]
        assert replaced.operands[1] == Imm(99)
        assert replaced.address == target.address
        assert replaced.size == target.size

    def test_ensure_prelude_once(self):
        editor = self._editor()
        ins = Instruction(O.MOV, (Reg(R.r14), Mem(base=R.r15)))
        editor.ensure_prelude("k", ins)
        editor.ensure_prelude(
            "k", Instruction(O.MOV, (Reg(R.r14), Mem(base=R.r15))))
        preludes = [i for i in editor.instructions
                    if i.opcode is O.MOV and isinstance(i.operands[1], Mem)
                    and i.operands[1].base == R.r15]
        assert len(preludes) == 1

    def test_missing_address_raises(self):
        editor = self._editor()
        with pytest.raises(EditError):
            editor.index_of(0xDEAD)

    def test_finish_recomputes_cost(self):
        editor = self._editor()
        before = editor.finish().cost
        editor.insert_at_start(
            Instruction(O.IMUL, (Reg(R.rax), Imm(3))))
        after = editor.finish().cost
        assert after > before
