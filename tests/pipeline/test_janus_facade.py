"""Tests for the Janus pipeline facade (paper Fig. 1a flow)."""

import pytest

from repro.dbm.executor import run_native
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode

SOURCE = """
int n = 800;
double a[800];
double b[800];

int main() {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i++) { b[i] = 0.25 * i; }
    for (i = 0; i < n; i++) { a[i] = b[i] * 2.0; }
    for (i = 0; i < n; i++) { s += a[i]; }
    // A cold 8-trip loop invoked once: profile-mode fodder.
    for (i = 0; i < 8; i++) { b[i] = b[i] + 1.0; }
    print_double(s + b[3]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def janus():
    image = compile_source(SOURCE, CompileOptions(opt_level=2))
    instance = Janus(image, JanusConfig(n_threads=4))
    return instance


@pytest.fixture(scope="module")
def training(janus):
    return janus.train()


class TestStages:
    def test_analysis_is_cached(self, janus):
        assert janus.analysis is janus.analysis

    def test_training_produces_coverage(self, janus, training):
        assert training.coverage.total_instructions > 0
        assert training.coverage.loops

    def test_selection_modes_nest(self, janus, training):
        static = set(janus.select_loops(SelectionMode.STATIC))
        profiled = set(janus.select_loops(SelectionMode.STATIC_PROFILE,
                                          training))
        full = set(janus.select_loops(SelectionMode.JANUS, training))
        # Profile selection only *removes* static candidates...
        assert profiled <= static
        # ... and the full mode only adds dynamic candidates on top.
        assert profiled <= full

    def test_profile_filters_cold_loop(self, janus, training):
        static = set(janus.select_loops(SelectionMode.STATIC))
        profiled = set(janus.select_loops(SelectionMode.STATIC_PROFILE,
                                          training))
        assert profiled < static  # the 8-trip loop is dropped

    def test_one_loop_per_nest(self, janus, training):
        selected = janus.select_loops(SelectionMode.JANUS, training)
        analysis = janus.analysis
        for loop_id in selected:
            loop = analysis.loop(loop_id).loop
            parent = loop.parent
            while parent is not None:
                assert parent.loop_id not in selected
                parent = parent.parent

    def test_schedule_checksum_bound_to_binary(self, janus, training):
        schedule = janus.build_schedule(SelectionMode.JANUS, training)
        assert schedule.verify_against(janus.image)

    def test_all_modes_preserve_output(self, janus, training):
        native = run_native(load(janus.image))
        for mode in (SelectionMode.DBM_ONLY, SelectionMode.STATIC,
                     SelectionMode.STATIC_PROFILE, SelectionMode.JANUS):
            result = janus.run(mode, training=training)
            assert result.outputs == pytest.approx(native.outputs) \
                or _close(result.outputs, native.outputs)

    def test_thread_count_override(self, janus, training):
        two = janus.run(SelectionMode.JANUS, training=training, n_threads=2)
        eight = janus.run(SelectionMode.JANUS, training=training,
                          n_threads=8)
        assert eight.cycles <= two.cycles


def _close(a, b):
    return len(a) == len(b) and all(
        k1 == k2 and (v1 == v2 if k1 == "i"
                      else abs(v1 - v2) <= 1e-9 * max(1.0, abs(v1)))
        for (k1, v1), (k2, v2) in zip(a, b))
