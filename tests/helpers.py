"""Shared test helpers: assemble-and-run utilities."""

from repro.isa import Opcode as O
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import R
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.dbm.executor import run_native


def run_asm(build, inputs=None, entry="_start"):
    """Build a program with ``build(assembler)``, assemble, load and run it.

    Returns the :class:`ExecutionResult`.
    """
    a = Assembler()
    build(a)
    image = a.assemble(entry=entry)
    process = load(image, inputs=inputs)
    return run_native(process)


def ints(result):
    """The integer outputs of an execution, in order."""
    return [v for kind, v in result.outputs if kind == "i"]


def floats(result):
    """The float outputs of an execution, in order."""
    return [v for kind, v in result.outputs if kind == "f"]


__all__ = ["run_asm", "ints", "floats", "O", "Imm", "Label", "Mem", "Reg", "R",
           "Assembler", "load", "run_native"]
