"""End-to-end service tests through the CLI and the eval harness."""

import json
import threading

import pytest

from repro.cli import main
from repro.eval.harness import EvalHarness
from repro.pipeline import SelectionMode
from repro.service.client import ServiceClient
from repro.util import DigestCache, cached_image_digest

from tests.service.test_daemon import SOURCE_A


@pytest.fixture()
def served(tmp_path):
    """A live `repro serve` daemon; yields (socket path, registry root)."""
    socket_path = str(tmp_path / "daemon.sock")
    registry_root = str(tmp_path / "registry")
    thread = threading.Thread(
        target=main,
        args=(["serve", "--socket", socket_path, "--registry",
               registry_root, "--jobs", "0", "--timeout", "120"],),
        daemon=True)
    thread.start()
    deadline = 100
    for _ in range(deadline):
        try:
            with ServiceClient(socket_path, timeout=5.0) as client:
                client.ping()
            break
        except OSError:
            threading.Event().wait(0.05)
    else:
        pytest.fail("daemon did not come up")
    yield socket_path, registry_root
    try:
        with ServiceClient(socket_path, timeout=5.0) as client:
            client.shutdown()
    except OSError:
        pass
    thread.join(timeout=10)


def test_submit_roundtrip_and_registry_cli(served, tmp_path, capsys):
    socket_path, registry_root = served
    source = tmp_path / "app.jc"
    source.write_text(SOURCE_A)
    binary = tmp_path / "app.jelf"
    assert main(["compile", str(source), "-o", str(binary), "-O", "2"]) == 0
    capsys.readouterr()

    out_dir = tmp_path / "schedules"
    submit = ["submit", str(binary), "--socket", socket_path,
              "--train-input", "1", "--out-dir", str(out_dir)]
    assert main(submit) == 0
    cold_out = capsys.readouterr().out
    assert "cold" in cold_out
    served_schedule = (out_dir / "app.jrs").read_bytes()
    assert served_schedule

    # Warm resubmit: same bytes, served from the registry.
    assert main(submit) == 0
    assert "warm" in capsys.readouterr().out
    assert (out_dir / "app.jrs").read_bytes() == served_schedule

    # One-shot CLI parity on the identical binary.
    reference = tmp_path / "ref.jrs"
    assert main(["schedule", str(binary), "-o", str(reference),
                 "--train-input", "1"]) == 0
    capsys.readouterr()
    assert reference.read_bytes() == served_schedule

    # Daemon stats via the CLI, with the JSON payload on disk.
    stats_path = tmp_path / "service-stats.json"
    assert main(["submit", "--socket", socket_path, "--stats",
                 "-o", str(stats_path)]) == 0
    assert "registry: 1 entries" in capsys.readouterr().out
    payload = json.loads(stats_path.read_text())
    assert payload["counters"]["service.registry.hits"] >= 1
    assert payload["computed"]
    assert all(count == 1 for count in payload["computed"].values())

    # Offline registry maintenance over the same root.
    assert main(["registry", "stats", "--registry", registry_root]) == 0
    assert "entries" in capsys.readouterr().out
    assert main(["registry", "verify", "--registry", registry_root]) == 0
    capsys.readouterr()
    assert main(["registry", "gc", "--registry", registry_root,
                 "--max-entries", "0"]) == 0
    capsys.readouterr()
    assert main(["registry", "stats", "--registry", registry_root,
                 "-o", str(tmp_path / "reg.json")]) == 0
    capsys.readouterr()
    report = json.loads((tmp_path / "reg.json").read_text())
    assert report["entries"] == 0


def test_submit_errors(tmp_path, capsys):
    missing_socket = str(tmp_path / "nowhere.sock")
    assert main(["submit", "--socket", missing_socket, "--ping"]) == 2
    assert "cannot reach daemon" in capsys.readouterr().err
    assert main(["submit", "no-such-target", "--socket",
                 missing_socket]) == 2
    capsys.readouterr()


def test_harness_routes_schedules_through_service(served):
    socket_path, _ = served
    name = "429.mcf"
    direct = EvalHarness(n_threads=4)
    routed = EvalHarness(n_threads=4, service=socket_path)
    mode = SelectionMode.STATIC
    baseline = direct.run(name, mode)
    cold = routed.run(name, mode)
    assert cold.output_text == baseline.output_text
    assert cold.cycles == baseline.cycles
    assert cold.instructions == baseline.instructions
    # The daemon registry now holds the schedule: a fresh harness gets a
    # warm hit and skips local schedule generation entirely.
    warm_harness = EvalHarness(n_threads=4, service=socket_path)
    warm = warm_harness.run(name, mode)
    assert warm.cycles == baseline.cycles
    with ServiceClient(socket_path, timeout=30.0) as client:
        stats = client.stats()
    assert stats["counters"]["service.registry.hits"] >= 1
    assert all(count == 1 for count in stats["computed"].values())


def test_digest_cache_shared_keying(tmp_path):
    from repro.jcc import CompileOptions, compile_source
    from repro.util import _DIGEST_MEMO, image_digest

    image = compile_source(SOURCE_A, CompileOptions(opt_level=2))
    raw = image.serialize()
    cache = DigestCache(str(tmp_path / "digests"))
    first = cached_image_digest(raw, cache=cache)
    assert first == image_digest(image)

    # Drop the in-process memo: the next lookup must come from the disk
    # cache, never from deserialising (the poisoned deserializer proves
    # it).
    _DIGEST_MEMO.clear()

    def explode(_raw):
        raise AssertionError("digest should come from the cache")

    second = cached_image_digest(raw, cache=DigestCache(
        str(tmp_path / "digests")), deserialize=explode)
    assert first == second


def test_cli_digest_cache_flag(tmp_path, capsys):
    source = tmp_path / "app.jc"
    source.write_text(SOURCE_A)
    binary = tmp_path / "app.jelf"
    assert main(["compile", str(source), "-o", str(binary), "-O", "2"]) == 0
    capsys.readouterr()
    cache_dir = tmp_path / "digests"
    assert main(["analyze", str(binary),
                 "--digest-cache", str(cache_dir)]) == 0
    first = capsys.readouterr().out
    assert "[sha256:" in first
    digest_files = list(cache_dir.glob("digest-*.txt"))
    assert len(digest_files) == 1
    # Second run reuses the persisted digest and prints the same key.
    assert main(["analyze", str(binary),
                 "--digest-cache", str(cache_dir)]) == 0
    assert capsys.readouterr().out == first
