"""Registry store tests: round-trip, quarantine, eviction, entry format."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rewrite.rules import RuleID
from repro.rewrite.schedule import RewriteSchedule
from repro.service.registry import (
    RegistryEntry,
    RegistryFormatError,
    ScheduleRegistry,
    config_fingerprint,
    entry_key,
    validate_schedule_bytes,
)

DIGEST = "ab" * 32
OTHER_DIGEST = "cd" * 32
FP = config_fingerprint({"mode": "janus", "family": "parallel"})


def make_schedule_bytes(n_rules: int = 3, checksum: int = 7) -> bytes:
    schedule = RewriteSchedule(text_checksum=checksum)
    for index in range(n_rules):
        schedule.add_rule(0x1000 + 4 * index, RuleID.PROF_LOOP_START,
                          data=index)
    return schedule.serialize()


def make_entry(digest=DIGEST, mode="janus/parallel", fp=FP,
               n_rules=3, meta=None) -> RegistryEntry:
    return RegistryEntry(digest=digest, mode=mode, fingerprint=fp,
                         schedule_bytes=make_schedule_bytes(n_rules),
                         meta=meta or {"rules": n_rules})


def test_put_get_roundtrip(tmp_path):
    registry = ScheduleRegistry(str(tmp_path))
    entry = make_entry()
    key = registry.put(entry)
    assert key == entry_key(DIGEST, "janus/parallel", FP)
    got = registry.get(DIGEST, "janus/parallel", FP)
    assert got is not None
    assert got.schedule_bytes == entry.schedule_bytes
    assert got.meta == entry.meta
    assert registry.metrics.get("service.registry.hits") == 1
    assert registry.metrics.get("service.registry.puts") == 1


def test_miss_counts(tmp_path):
    registry = ScheduleRegistry(str(tmp_path))
    assert registry.get(DIGEST, "janus/parallel", FP) is None
    assert registry.metrics.get("service.registry.misses") == 1


def test_sharding_layout(tmp_path):
    registry = ScheduleRegistry(str(tmp_path))
    entry = make_entry()
    key = registry.put(entry)
    path = os.path.join(str(tmp_path), key[:2], key + ".jreg")
    assert os.path.exists(path)
    stats = registry.stats()
    assert stats["entries"] == 1
    assert stats["shards"] == 1


def test_key_distinguishes_all_components():
    keys = {
        entry_key(DIGEST, "janus/parallel", FP),
        entry_key(OTHER_DIGEST, "janus/parallel", FP),
        entry_key(DIGEST, "static/parallel", FP),
        entry_key(DIGEST, "janus/parallel",
                  config_fingerprint({"threads": 4})),
    }
    assert len(keys) == 4


def test_corrupt_entry_quarantined(tmp_path):
    registry = ScheduleRegistry(str(tmp_path))
    entry = make_entry()
    key = registry.put(entry)
    path = os.path.join(str(tmp_path), key[:2], key + ".jreg")
    raw = open(path, "rb").read()
    with open(path, "wb") as fh:          # flip bytes inside the payload
        fh.write(raw[:-10] + b"X" * 10)
    assert registry.get(DIGEST, "janus/parallel", FP) is None
    assert not os.path.exists(path)
    quarantined = os.listdir(registry.quarantine_dir)
    assert len(quarantined) == 1
    assert registry.metrics.get("service.registry.quarantined") == 1
    assert registry.metrics.get("service.registry.validation_failures") == 1
    # The slot is usable again: re-put, then a clean hit.
    registry.put(entry)
    assert registry.get(DIGEST, "janus/parallel", FP) is not None


def test_wrong_key_contents_quarantined(tmp_path):
    """A validly-encoded entry under the wrong key must not be served."""
    registry = ScheduleRegistry(str(tmp_path))
    entry = make_entry()
    key_a = registry.put(entry)
    impostor_key = entry_key(OTHER_DIGEST, "janus/parallel", FP)
    src = os.path.join(str(tmp_path), key_a[:2], key_a + ".jreg")
    dst = os.path.join(str(tmp_path), impostor_key[:2],
                       impostor_key + ".jreg")
    os.makedirs(os.path.dirname(dst), exist_ok=True)
    with open(src, "rb") as fh_in, open(dst, "wb") as fh_out:
        fh_out.write(fh_in.read())
    assert registry.get(OTHER_DIGEST, "janus/parallel", FP) is None
    assert os.listdir(registry.quarantine_dir)


def test_lru_eviction_then_refetch(tmp_path):
    registry = ScheduleRegistry(str(tmp_path), max_entries=2)
    entries = [make_entry(fp=config_fingerprint({"i": i}), n_rules=i + 1)
               for i in range(3)]
    for index, entry in enumerate(entries):
        key = registry.put(entry)
        # Deterministic LRU order regardless of filesystem timestamp
        # resolution: back-date older entries explicitly.
        path = os.path.join(str(tmp_path), key[:2], key + ".jreg")
        os.utime(path, (1000.0 + index, 1000.0 + index))
        if index < 2:
            continue
    report = registry.gc(max_entries=2)
    assert report["entries"] == 2
    # Entry 0 was least recently used: evicted.
    assert registry.get(DIGEST, "janus/parallel",
                        config_fingerprint({"i": 0})) is None
    assert registry.get(DIGEST, "janus/parallel",
                        config_fingerprint({"i": 2})) is not None
    # Refetch correctness: re-admitting the evicted key serves the same
    # bytes again.
    registry.put(entries[0])
    refetched = registry.get(DIGEST, "janus/parallel",
                             config_fingerprint({"i": 0}))
    assert refetched is not None
    assert refetched.schedule_bytes == entries[0].schedule_bytes


def test_hit_touch_protects_hot_entries(tmp_path):
    registry = ScheduleRegistry(str(tmp_path))
    fps = [config_fingerprint({"i": i}) for i in range(2)]
    for index, fp in enumerate(fps):
        key = registry.put(make_entry(fp=fp))
        path = os.path.join(str(tmp_path), key[:2], key + ".jreg")
        os.utime(path, (1000.0 + index, 1000.0 + index))
    # Touch the older entry via a hit; now the *newer* one is LRU.
    assert registry.get(DIGEST, "janus/parallel", fps[0]) is not None
    registry.gc(max_entries=1)
    assert registry.get(DIGEST, "janus/parallel", fps[0]) is not None
    assert registry.get(DIGEST, "janus/parallel", fps[1]) is None


def test_size_budget_eviction(tmp_path):
    registry = ScheduleRegistry(str(tmp_path))
    for i in range(4):
        key = registry.put(make_entry(fp=config_fingerprint({"i": i})))
        path = os.path.join(str(tmp_path), key[:2], key + ".jreg")
        os.utime(path, (1000.0 + i, 1000.0 + i))
    total = registry.stats()["total_bytes"]
    report = registry.gc(max_bytes=total - 1)
    assert report["evicted"] >= 1
    assert registry.stats()["total_bytes"] < total


def test_verify_walks_and_quarantines(tmp_path):
    registry = ScheduleRegistry(str(tmp_path))
    for i in range(3):
        registry.put(make_entry(fp=config_fingerprint({"i": i})))
    victim_key = entry_key(DIGEST, "janus/parallel",
                           config_fingerprint({"i": 1}))
    path = os.path.join(str(tmp_path), victim_key[:2],
                        victim_key + ".jreg")
    with open(path, "wb") as fh:
        fh.write(b"JREG1 garbage")
    report = registry.verify()
    assert report["checked"] == 3
    assert report["ok"] == 2
    assert len(report["quarantined"]) == 1


def test_validate_rejects_non_schedules():
    with pytest.raises(RegistryFormatError):
        validate_schedule_bytes(b"not a schedule")
    with pytest.raises(RegistryFormatError):
        validate_schedule_bytes(make_schedule_bytes()[:-3])


def test_decode_rejects_truncation_and_tampering():
    raw = make_entry().encode()
    with pytest.raises(RegistryFormatError):
        RegistryEntry.decode(raw[:-1])
    with pytest.raises(RegistryFormatError):
        RegistryEntry.decode(b"XXXX" + raw[4:])
    # Flip one schedule byte: checksum trailer must catch it.
    mutated = bytearray(raw)
    mutated[-40] ^= 0xFF
    with pytest.raises(RegistryFormatError):
        RegistryEntry.decode(bytes(mutated))


# -- property: entry encode/decode round-trips ---------------------------------

_rule_ids = st.sampled_from([RuleID.PROF_LOOP_START, RuleID.PROF_LOOP_ITER,
                             RuleID.THREAD_SCHEDULE, RuleID.LOOP_INIT,
                             RuleID.MEM_PREFETCH, RuleID.VECT_CONVERT])
_rules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2 ** 64 - 1), _rule_ids,
              st.integers(min_value=-2 ** 63, max_value=2 ** 63 - 1)),
    max_size=24)
_meta = st.dictionaries(
    st.text(max_size=12),
    st.one_of(st.integers(min_value=-2 ** 31, max_value=2 ** 31),
              st.text(max_size=16), st.booleans(), st.none()),
    max_size=6)


@settings(max_examples=60, deadline=None)
@given(rules=_rules, checksum=st.integers(min_value=0,
                                          max_value=2 ** 32 - 1),
       meta=_meta, mode=st.sampled_from(["janus/parallel", "static/vector",
                                         "static_profile/prefetch"]))
def test_entry_roundtrip_property(rules, checksum, meta, mode):
    schedule = RewriteSchedule(text_checksum=checksum)
    for address, rule_id, data in rules:
        schedule.add_rule(address, rule_id, data)
    entry = RegistryEntry(digest=DIGEST, mode=mode, fingerprint=FP,
                          schedule_bytes=schedule.serialize(), meta=meta)
    decoded = RegistryEntry.decode(entry.encode())
    assert decoded.digest == entry.digest
    assert decoded.mode == entry.mode
    assert decoded.fingerprint == entry.fingerprint
    assert decoded.schedule_bytes == entry.schedule_bytes
    assert decoded.meta == meta
    assert decoded.key == entry.key
