"""Daemon tests: single-flight dedupe, degradation ladder, CLI parity.

Everything is driven through real unix-socket connections inside
``asyncio.run`` scenarios (the daemon with ``jobs=0`` runs its compute
jobs on the default thread executor, so no worker processes spawn).
"""

import asyncio

import pytest

from repro.cli import main
from repro.jcc import CompileOptions, compile_source
from repro.service import protocol
from repro.service.daemon import AnalysisDaemon, DaemonConfig

SOURCE_A = """
int n = 200;
double a[200];
double b[200];

int main() {
    int i;
    int reps = read_int();
    int r;
    double s = 0.0;
    for (i = 0; i < n; i++) { b[i] = 0.5 * i; }
    for (r = 0; r < reps; r++) {
        for (i = 0; i < n; i++) { a[i] = b[i] * 3.0 + 1.0; }
    }
    for (i = 0; i < n; i++) { s += a[i]; }
    print_double(s);
    return 0;
}
"""

SOURCE_B = """
int n = 160;
double x[160];

int main() {
    int i;
    int reps = read_int();
    int r;
    double s = 0.0;
    for (i = 0; i < n; i++) { x[i] = 1.5 * i + 2.0; }
    for (r = 0; r < reps; r++) {
        for (i = 0; i < n; i++) { x[i] = x[i] * 0.5 + 1.0; }
    }
    for (i = 0; i < n; i++) { s += x[i]; }
    print_double(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def binary_a():
    return compile_source(SOURCE_A, CompileOptions(opt_level=2)).serialize()


@pytest.fixture(scope="module")
def binary_b():
    return compile_source(SOURCE_B, CompileOptions(opt_level=2)).serialize()


def daemon_config(tmp_path, **overrides) -> DaemonConfig:
    settings = {"socket_path": str(tmp_path / "daemon.sock"),
                "registry_root": str(tmp_path / "registry"),
                "jobs": 0}
    settings.update(overrides)
    return DaemonConfig(**settings)


async def connect(path):
    return await asyncio.open_unix_connection(
        path, limit=protocol.MAX_LINE_BYTES)


async def roundtrip(connection, message):
    reader, writer = connection
    writer.write(protocol.encode_message(message))
    await writer.drain()
    return protocol.decode_message(await reader.readline())


async def close_all(connections):
    for _, writer in connections:
        writer.close()
    for _, writer in connections:
        try:
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


def schedule_request(raw, request_id, **params):
    message = {"op": "schedule", "id": request_id,
               "binary_b64": protocol.b64encode(raw),
               "mode": "janus", "train_inputs": [1], "threads": 4}
    message.update(params)
    return message


def test_eight_clients_single_flight(tmp_path, binary_a, binary_b):
    """8 concurrent clients, 2 distinct keys: each analysed exactly once."""

    async def scenario():
        daemon = AnalysisDaemon(daemon_config(tmp_path))
        await daemon.start()
        try:
            connections = [await connect(daemon.config.socket_path)
                           for _ in range(8)]
            requests = [
                roundtrip(conn,
                          schedule_request(
                              binary_a if index % 2 == 0 else binary_b,
                              index))
                for index, conn in enumerate(connections)]
            replies = await asyncio.gather(*requests)
            stats = daemon.stats()
            await close_all(connections)
            return replies, stats
        finally:
            await daemon.stop()

    replies, stats = asyncio.run(scenario())
    assert all(reply["ok"] for reply in replies)
    # Byte-identical answers per distinct binary.
    bytes_a = {replies[i]["schedule_b64"] for i in range(0, 8, 2)}
    bytes_b = {replies[i]["schedule_b64"] for i in range(1, 8, 2)}
    assert len(bytes_a) == 1 and len(bytes_b) == 1
    assert bytes_a != bytes_b
    # Exactly one analysis per distinct (digest, mode, config) key.
    assert stats["computed"]
    assert all(count == 1 for count in stats["computed"].values())
    counters = stats["counters"]
    assert counters["service.computations"] == 2
    # The other 6 requests were either merged into the in-flight job or
    # served warm from the registry: nothing was computed twice.
    merges = counters.get("service.single_flight_merges", 0)
    hits = counters.get("service.registry.hits", 0)
    assert merges + hits == 6
    assert counters["service.admitted"] == 2
    assert stats["registry"]["entries"] == 2
    assert stats["inflight"] == 0


def test_warm_resubmit_and_restart_persistence(tmp_path, binary_a):
    config = daemon_config(tmp_path)

    async def scenario(expect_cached):
        daemon = AnalysisDaemon(config)
        await daemon.start()
        try:
            connection = await connect(config.socket_path)
            reply = await roundtrip(connection,
                                    schedule_request(binary_a, 1))
            await close_all([connection])
            return reply, daemon.stats()
        finally:
            await daemon.stop()

    cold, cold_stats = asyncio.run(scenario(False))
    assert cold["ok"] and cold["cached"] is False
    assert cold["admitted"] is True
    assert cold["rules"] > 0
    # A second daemon over the same registry root serves the entry warm:
    # the registry, not daemon memory, is the source of truth.
    warm, warm_stats = asyncio.run(scenario(True))
    assert warm["ok"] and warm["cached"] is True
    assert warm["schedule_b64"] == cold["schedule_b64"]
    assert warm_stats["counters"].get("service.computations", 0) == 0
    assert warm_stats["counters"]["service.registry.hits"] == 1
    # Warm replies recorded under their own latency series.
    assert any(key.startswith("service.latency.schedule.warm")
               for key in warm_stats["gauges"])


def test_schedule_bytes_identical_to_one_shot_cli(tmp_path, binary_a,
                                                  capsys):
    """The served bytes diff clean against `repro schedule` output."""

    async def scenario():
        daemon = AnalysisDaemon(daemon_config(tmp_path))
        await daemon.start()
        try:
            connection = await connect(daemon.config.socket_path)
            reply = await roundtrip(
                connection,
                schedule_request(binary_a, 1, threads=8))
            await close_all([connection])
            return reply
        finally:
            await daemon.stop()

    reply = asyncio.run(scenario())
    assert reply["ok"]
    served = protocol.b64decode(reply["schedule_b64"])

    binary_path = tmp_path / "a.jelf"
    binary_path.write_bytes(binary_a)
    schedule_path = tmp_path / "a.jrs"
    assert main(["schedule", str(binary_path), "-o", str(schedule_path),
                 "--train-input", "1"]) == 0
    capsys.readouterr()
    assert schedule_path.read_bytes() == served


def test_busy_when_queue_full(tmp_path, binary_a):
    async def scenario():
        daemon = AnalysisDaemon(daemon_config(tmp_path, max_queue=0))
        await daemon.start()
        try:
            connection = await connect(daemon.config.socket_path)
            reply = await roundtrip(connection,
                                    schedule_request(binary_a, 1))
            await close_all([connection])
            return reply, daemon.stats()
        finally:
            await daemon.stop()

    reply, stats = asyncio.run(scenario())
    assert reply["ok"] is False
    assert reply["error"]["code"] == protocol.BUSY
    assert stats["counters"]["service.busy_rejections"] == 1


def test_timeout_then_warm_recovery(tmp_path, binary_a):
    """A timed-out requester still leaves a registry entry behind."""

    async def scenario():
        daemon = AnalysisDaemon(daemon_config(tmp_path,
                                              request_timeout=1e-6))
        await daemon.start()
        try:
            connection = await connect(daemon.config.socket_path)
            first = await roundtrip(connection,
                                    schedule_request(binary_a, 1))
            # The shielded computation keeps running; wait it out.
            for _ in range(2000):
                if not daemon._inflight:
                    break
                await asyncio.sleep(0.01)
            second = await roundtrip(connection,
                                     schedule_request(binary_a, 2))
            await close_all([connection])
            return first, second, daemon.stats()
        finally:
            await daemon.stop()

    first, second, stats = asyncio.run(scenario())
    assert first["ok"] is False
    assert first["error"]["code"] == protocol.TIMEOUT
    # Warm hits never touch the computation path, so the tiny timeout
    # does not apply: the entry the doomed request produced is served.
    assert second["ok"] is True
    assert second["cached"] is True
    assert stats["counters"]["service.timeouts"] == 1
    assert stats["counters"]["service.computations"] == 1


def test_corrupt_registry_entry_recomputed(tmp_path, binary_a):
    import os

    async def scenario(daemon):
        await daemon.start()
        try:
            connection = await connect(daemon.config.socket_path)
            reply = await roundtrip(connection,
                                    schedule_request(binary_a, 1))
            await close_all([connection])
            return reply
        finally:
            await daemon.stop()

    config = daemon_config(tmp_path)
    first = asyncio.run(scenario(AnalysisDaemon(config)))
    assert first["ok"] and not first["cached"]
    # Garble every stored entry in place.
    root = config.registry_root
    entry_paths = [os.path.join(dirpath, name)
                   for dirpath, _, names in os.walk(root)
                   for name in names if name.endswith(".jreg")]
    assert entry_paths
    for path in entry_paths:
        with open(path, "r+b") as handle:
            handle.seek(-16, os.SEEK_END)
            handle.write(b"\xff" * 16)
    daemon = AnalysisDaemon(config)
    second = asyncio.run(scenario(daemon))
    # Corruption is quarantined, the schedule recomputed, and the bytes
    # are the deterministic ones from the first run.
    assert second["ok"] and not second["cached"]
    assert second["schedule_b64"] == first["schedule_b64"]
    stats = daemon.stats()
    assert stats["counters"]["service.registry.quarantined"] >= 1
    assert stats["counters"]["service.computations"] == 1
    assert os.path.isdir(os.path.join(root, "quarantine"))
    assert os.listdir(os.path.join(root, "quarantine"))


def test_bad_requests_are_typed(tmp_path, binary_a):
    async def scenario():
        daemon = AnalysisDaemon(daemon_config(tmp_path))
        await daemon.start()
        try:
            connection = await connect(daemon.config.socket_path)
            replies = [
                await roundtrip(connection, {"op": "frobnicate", "id": 1}),
                await roundtrip(connection, {"op": "schedule", "id": 2}),
                await roundtrip(connection, schedule_request(
                    binary_a, 3, mode="warp_speed")),
                await roundtrip(connection, {"op": "run", "id": 4,
                                             "binary_b64": "!!!"}),
            ]
            reader, writer = connection
            writer.write(b"this is not json\n")
            await writer.drain()
            replies.append(protocol.decode_message(await reader.readline()))
            await close_all([connection])
            return replies
        finally:
            await daemon.stop()

    replies = asyncio.run(scenario())
    for reply in replies:
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.BAD_REQUEST


def test_analyze_and_run_ops(tmp_path, binary_a):
    async def scenario():
        daemon = AnalysisDaemon(daemon_config(tmp_path))
        await daemon.start()
        try:
            connection = await connect(daemon.config.socket_path)
            analyze = await roundtrip(connection, {
                "op": "analyze", "id": 1,
                "binary_b64": protocol.b64encode(binary_a)})
            run = await roundtrip(connection, {
                "op": "run", "id": 2,
                "binary_b64": protocol.b64encode(binary_a),
                "mode": "janus", "inputs": [2], "threads": 4,
                "train_inputs": [1]})
            native = await roundtrip(connection, {
                "op": "run", "id": 3,
                "binary_b64": protocol.b64encode(binary_a),
                "mode": "native", "inputs": [2]})
            await close_all([connection])
            return analyze, run, native
        finally:
            await daemon.stop()

    analyze, run, native = asyncio.run(scenario())
    assert analyze["ok"]
    assert analyze["loops"] > 0
    assert any(row["category"] == "static_doall"
               for row in analyze["rows"])
    assert run["ok"] and native["ok"]
    assert run["exit_code"] == 0
    # The parallelised run computes what the native run computes.
    assert run["output"] == native["output"]
