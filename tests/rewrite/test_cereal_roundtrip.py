"""Property tests for the fixed-length rewrite-rule wire format.

Every RuleID with boundary operands must byte-round-trip through
pack/unpack, and malformed buffers (truncated, oversized, unknown IDs)
must raise :class:`ScheduleFormatError` — with the schedule deserialiser
reporting *which* rule record was at fault.
"""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.rewrite.rules import (
    RULE_SIZE,
    RewriteRule,
    RuleID,
    ScheduleFormatError,
)
from repro.rewrite.schedule import RewriteSchedule, ScheduleError

addresses = st.integers(min_value=0, max_value=2**64 - 1)
datas = st.integers(min_value=-(2**63), max_value=2**63 - 1)
rule_ids = st.sampled_from(sorted(RuleID))


@given(addresses, rule_ids, datas)
def test_pack_unpack_round_trip(address, rule_id, data):
    rule = RewriteRule(address=address, rule_id=rule_id, data=data)
    raw = rule.pack()
    assert len(raw) == RULE_SIZE
    assert RewriteRule.unpack(raw) == rule
    assert RewriteRule.from_bytes(raw) == rule


@given(addresses, rule_ids, datas, st.integers(min_value=0, max_value=64))
def test_unpack_at_offset(address, rule_id, data, pad):
    rule = RewriteRule(address=address, rule_id=rule_id, data=data)
    raw = b"\xaa" * pad + rule.pack()
    assert RewriteRule.unpack(raw, pad) == rule


@given(st.integers(min_value=0, max_value=RULE_SIZE - 1))
def test_truncated_buffer_rejected(size):
    raw = RewriteRule(address=0, rule_id=RuleID.TX_START).pack()[:size]
    with pytest.raises(ScheduleFormatError):
        RewriteRule.unpack(raw)
    with pytest.raises(ScheduleFormatError):
        RewriteRule.from_bytes(raw)


@given(st.integers(min_value=1, max_value=64))
def test_oversized_buffer_rejected_by_from_bytes(extra):
    raw = RewriteRule(address=0, rule_id=RuleID.TX_START).pack()
    with pytest.raises(ScheduleFormatError):
        RewriteRule.from_bytes(raw + b"\x00" * extra)


def test_negative_offset_rejected():
    raw = RewriteRule(address=0, rule_id=RuleID.LOOP_INIT).pack()
    with pytest.raises(ScheduleFormatError):
        RewriteRule.unpack(raw, -1)


def test_unknown_rule_id_rejected():
    known = {int(r) for r in RuleID}
    bogus = next(v for v in range(2**16) if v not in known)
    raw = struct.pack("<QHq", 0x1234, bogus, 0)
    with pytest.raises(ScheduleFormatError, match="unknown rule id"):
        RewriteRule.unpack(raw)


def test_truncation_error_names_the_offset():
    with pytest.raises(ScheduleFormatError, match="offset 4"):
        RewriteRule.unpack(b"\x00" * 10, 4)


def test_schedule_error_reports_rule_index():
    schedule = RewriteSchedule(text_checksum=1)
    schedule.add_rule(0x1000, RuleID.PROF_LOOP_START, 0)
    schedule.add_rule(0x2000, RuleID.PROF_LOOP_ITER, 0)
    raw = bytearray(schedule.serialize())
    # Magic (4) + header (14) + one rule (18) + address field (8): the
    # second rule's id bytes.
    offset = 4 + 14 + RULE_SIZE + 8
    raw[offset:offset + 2] = b"\xff\xff"
    with pytest.raises(ScheduleError, match="rule 1 of 2"):
        RewriteSchedule.deserialize(bytes(raw))


def test_schedule_truncated_rule_table_reports_index():
    schedule = RewriteSchedule(text_checksum=1)
    schedule.add_rule(0x1000, RuleID.PROF_LOOP_START, 0)
    schedule.add_rule(0x2000, RuleID.PROF_LOOP_ITER, 0)
    raw = schedule.serialize()
    # Chop mid-way through the second rule record.
    cut = raw[:4 + 14 + RULE_SIZE + 6]
    with pytest.raises(ScheduleError, match="rule 1 of 2"):
        RewriteSchedule.deserialize(cut)
