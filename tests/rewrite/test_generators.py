"""Unit tests for the rewrite-schedule generators."""

import pytest

from repro.analysis import LoopCategory, analyze_image
from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin.asm import Assembler
from repro.rewrite import (
    generate_parallel_schedule,
    generate_profile_schedule,
)
from repro.rewrite.gen_parallel import GenerationError
from repro.rewrite.gen_profile import COVERAGE_STAGE, DEPENDENCE_STAGE
from repro.rewrite.rules import PARALLEL_RULES, PROFILING_RULES, RuleID


def doall_image():
    a = Assembler()
    arr = a.space("arr", 64)
    a.label("_start")
    a.emit(O.MOV, Reg(R.rcx), Imm(0))
    a.label("loop")
    a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), Reg(R.rcx))
    a.emit(O.INC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(64))
    a.emit(O.JL, Label("loop"))
    a.emit(O.RET)
    return a.assemble(entry="_start")


def recurrence_image():
    from repro.isa.operands import LabelRef

    a = Assembler()
    a.space("arr", 64)
    a.label("_start")
    a.emit(O.MOV, Reg(R.rcx), Imm(1))
    a.label("loop")
    a.emit(O.MOV, Reg(R.rax),
           Mem(index=R.rcx, scale=8, disp=LabelRef("arr", -8)))
    a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), Reg(R.rax))
    a.emit(O.INC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(64))
    a.emit(O.JL, Label("loop"))
    a.emit(O.RET)
    return a.assemble(entry="_start")


class TestParallelGenerator:
    def test_rule_pattern_for_a_doall_loop(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        kinds = [rule.rule_id for rule in schedule.rules]
        # The Fig. 2a pattern, in schedule order.
        assert kinds == [RuleID.LOOP_INIT, RuleID.THREAD_SCHEDULE,
                         RuleID.LOOP_UPDATE_BOUND, RuleID.THREAD_YIELD,
                         RuleID.LOOP_FINISH]
        assert all(rule.rule_id in PARALLEL_RULES
                   for rule in schedule.rules)

    def test_addresses_are_meaningful(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        by_kind = {rule.rule_id: rule for rule in schedule.rules}
        loop = analysis.loops[0].loop
        iterator = analysis.loops[0].induction.iterator
        assert by_kind[RuleID.THREAD_SCHEDULE].address == loop.header
        assert by_kind[RuleID.LOOP_UPDATE_BOUND].address == \
            iterator.cmp_address
        assert by_kind[RuleID.THREAD_YIELD].address == \
            iterator.exit_target

    def test_unparallelisable_loop_rejected(self):
        analysis = analyze_image(recurrence_image())
        assert analysis.loops[0].category is \
            LoopCategory.STATIC_DEPENDENCE
        with pytest.raises(GenerationError):
            generate_parallel_schedule(analysis, [0])

    def test_empty_selection_gives_empty_schedule(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [])
        assert len(schedule) == 0
        assert schedule.verify_against(analysis.image)


class TestProfileGenerator:
    def test_coverage_stage_rules(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, COVERAGE_STAGE)
        kinds = {rule.rule_id for rule in schedule.rules}
        assert kinds == {RuleID.PROF_LOOP_START, RuleID.PROF_LOOP_ITER,
                         RuleID.PROF_LOOP_FINISH}
        assert all(rule.rule_id in PROFILING_RULES
                   for rule in schedule.rules)

    def test_dependence_stage_only_for_dynamic_loops(self):
        # A static DOALL loop needs no PROF_MEM rules.
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, DEPENDENCE_STAGE)
        assert not schedule.rules_of_kind(RuleID.PROF_MEM_ACCESS)

    def test_loop_id_filter(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, COVERAGE_STAGE,
                                             loop_ids=[])
        assert len(schedule) == 0

    def test_bad_stage_rejected(self):
        analysis = analyze_image(doall_image())
        with pytest.raises(ValueError):
            generate_profile_schedule(analysis, "nonsense")
