"""Property and unit tests for the pool-record encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.rewrite import cereal


simple = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
trees = st.recursive(
    simple,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


@given(trees)
def test_round_trip(value):
    assert cereal.loads(cereal.dumps(value)) == value


def test_compactness_of_small_ints():
    assert len(cereal.dumps(0)) == 2
    assert len(cereal.dumps(63)) == 2
    assert len(cereal.dumps(-1)) == 2


def test_tuples_and_lists_distinct():
    assert cereal.loads(cereal.dumps((1, 2))) == (1, 2)
    assert cereal.loads(cereal.dumps([1, 2])) == [1, 2]
    assert isinstance(cereal.loads(cereal.dumps((1,))), tuple)
    assert isinstance(cereal.loads(cereal.dumps([1])), list)


def test_unencodable_rejected():
    with pytest.raises(cereal.CerealError):
        cereal.dumps(object())
    with pytest.raises(cereal.CerealError):
        cereal.dumps({1: "non-string key"})
    with pytest.raises(cereal.CerealError):
        cereal.dumps(2**80)


def test_truncated_rejected():
    raw = cereal.dumps([1, 2, 3])
    with pytest.raises(cereal.CerealError):
        cereal.loads(raw[:-1])
    with pytest.raises(cereal.CerealError):
        cereal.loads(raw + b"\x01")
