"""Vector rewrite mode: legality gating, trip splitting and execution.

The packed rewrite must be observationally invisible: every test that
runs a vectorised schedule compares outputs, exit code and the touched
memory words against the plain-DBM scalar reference.
"""

import pytest

from repro.analysis import LoopCategory, analyze_image
from repro.analysis.classify import assess_vector_legality
from repro.analysis.induction import vector_trip_split
from repro.dbm.modifier import JanusDBM, run_under_dbm
from repro.dbm.runtime import ParallelRuntime
from repro.isa import Opcode as O
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import R
from repro.jbin import layout
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.rewrite.gen_parallel import GenerationError
from repro.rewrite.gen_vector import (
    generate_vector_schedule,
    vector_candidates,
)
from repro.rewrite.rules import RuleID

A = layout.DATA_BASE
B = layout.DATA_BASE + 0x10000


def _seed(a, n):
    """a[i] = float(i) for i in range(n) — not vectorisable (CVTSI2SD)."""
    a.emit(O.MOV, Reg(R.rcx), Imm(0))
    a.label("init")
    a.emit(O.CVTSI2SD, Reg(R.xmm0), Reg(R.rcx))
    a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=A), Reg(R.xmm0))
    a.emit(O.INC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(n))
    a.emit(O.JL, Label("init"))


def _image(body, seed_n=64):
    a = Assembler()
    a.label("_start")
    _seed(a, seed_n)
    a.emit(O.MOV, Reg(R.rax), Imm(3))
    a.emit(O.CVTSI2SD, Reg(R.xmm1), Reg(R.rax))
    body(a)
    a.emit(O.RET)
    return a.assemble(entry="_start")


def _doall_body(n, step=1, updater="inc"):
    """b[i] = a[i] * 3 + a[i] * 3 over i in range(0, n, step)."""
    def body(a):
        a.emit(O.MOV, Reg(R.rcx), Imm(0))
        a.label("loop")
        a.emit(O.MOVSD, Reg(R.xmm0), Mem(index=R.rcx, scale=8, disp=A))
        a.emit(O.MULSD, Reg(R.xmm0), Reg(R.xmm1))
        a.emit(O.ADDSD, Reg(R.xmm0), Reg(R.xmm0))
        a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=B), Reg(R.xmm0))
        if updater == "inc":
            a.emit(O.INC, Reg(R.rcx))
        elif updater == "lea":
            a.emit(O.LEA, Reg(R.rcx), Mem(base=R.rcx, disp=step))
        else:
            a.emit(O.ADD, Reg(R.rcx), Imm(step))
        a.emit(O.CMP, Reg(R.rcx), Imm(n))
        a.emit(O.JL, Label("loop"))
    return body


def _verdict_for_doall(image):
    analysis = analyze_image(image)
    verdicts = [v for v in vector_candidates(analysis)
                if analysis.loop(v.loop_id).category
                is not LoopCategory.STATIC_DEPENDENCE or not v.ok]
    # The seeding loop always rejects; the loop under test is the last one.
    return analysis, verdicts[-1]


def _run_pair(image, n, inputs=None):
    """(reference, vectorised) execution results plus the schedule."""
    analysis = analyze_image(image)
    schedule = generate_vector_schedule(analysis)
    ref = run_under_dbm(load(image, inputs=inputs))
    vec = run_under_dbm(load(image, inputs=inputs), schedule=schedule)
    ref_words = [ref.machine.memory.read(B + 8 * i) for i in range(n)]
    vec_words = [vec.machine.memory.read(B + 8 * i) for i in range(n)]
    assert vec_words == ref_words
    assert vec.outputs == ref.outputs
    assert vec.exit_code == ref.exit_code
    return ref, vec, schedule


# -- legality gating ----------------------------------------------------------

def test_unit_stride_doall_is_legal_four_lanes_aligned():
    image = _image(_doall_body(64))
    analysis, verdict = _verdict_for_doall(image)
    assert verdict.ok
    assert verdict.lanes == 4
    assert verdict.aligned
    assert len(verdict.convert_addresses) == 4
    assert verdict.iv_update_address is not None
    # xmm1 is read without a prior packed definition: a broadcast.
    assert R.xmm1 in verdict.broadcast_regs


def test_negative_stride_rejected():
    def body(a):
        a.emit(O.MOV, Reg(R.rcx), Imm(63))
        a.label("loop")
        a.emit(O.MOVSD, Reg(R.xmm0), Mem(index=R.rcx, scale=8, disp=A))
        a.emit(O.MULSD, Reg(R.xmm0), Reg(R.xmm1))
        a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=B), Reg(R.xmm0))
        a.emit(O.DEC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(0))
        a.emit(O.JGE, Label("loop"))
    _analysis, verdict = _verdict_for_doall(_image(body))
    assert not verdict.ok
    assert any("step -1" in reason for reason in verdict.reasons)


def test_non_unit_stride_rejected():
    _analysis, verdict = _verdict_for_doall(
        _image(_doall_body(64, step=2, updater="add")))
    assert not verdict.ok
    assert any("step 2" in reason for reason in verdict.reasons)


def _overlap_image(read_offset):
    """b[i] = b[i + k] * 3: carried dependence at distance k words."""
    def body(a):
        a.emit(O.MOV, Reg(R.rcx), Imm(0))
        a.label("loop")
        a.emit(O.MOVSD, Reg(R.xmm0),
               Mem(index=R.rcx, scale=8, disp=B + read_offset))
        a.emit(O.MULSD, Reg(R.xmm0), Reg(R.xmm1))
        a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=B), Reg(R.xmm0))
        a.emit(O.INC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(56))
        a.emit(O.JL, Label("loop"))
    return _image(body)


def test_loop_carried_overlap_rejected_by_classifier():
    # The classifier proves the cross-iteration dependence, so the loop
    # never reaches the width check in the first place.
    _analysis, verdict = _verdict_for_doall(_overlap_image(16))
    assert not verdict.ok
    assert any("static DOALL" in reason for reason in verdict.reasons)


def test_overlap_width_check_is_defense_in_depth():
    # Force the category past the classifier to confirm the width check
    # independently gates overlapping write/read pairs: a two-word gap
    # caps the width at two lanes, a one-word gap rejects outright.
    for offset, expect_ok, expect_lanes in ((16, True, 2), (8, False, 0)):
        analysis = analyze_image(_overlap_image(offset))
        result = analysis.loops[-1]
        result.category = LoopCategory.STATIC_DOALL
        fa = analysis.function_of_loop(result)
        verdict = assess_vector_legality(result, fa.cfg)
        assert verdict.ok is expect_ok
        if expect_ok:
            assert verdict.lanes == expect_lanes
        else:
            assert any("overlaps within the vector width" in reason
                       for reason in verdict.reasons)


def test_unaligned_loop_falls_back_to_two_lanes():
    # B + 8 shifts every access off 32-byte alignment at iteration zero.
    def body(a):
        a.emit(O.MOV, Reg(R.rcx), Imm(0))
        a.label("loop")
        a.emit(O.MOVSD, Reg(R.xmm0),
               Mem(index=R.rcx, scale=8, disp=A + 8))
        a.emit(O.MULSD, Reg(R.xmm0), Reg(R.xmm1))
        a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=B + 8), Reg(R.xmm0))
        a.emit(O.INC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(60))
        a.emit(O.JL, Label("loop"))
    _analysis, verdict = _verdict_for_doall(_image(body))
    assert verdict.ok
    assert not verdict.aligned
    assert verdict.lanes == 2


# -- trip splitting -----------------------------------------------------------

def test_vector_trip_split_always_peels_an_epilogue():
    for total in range(1, 40):
        for lanes in (2, 4):
            packed, remainder = vector_trip_split(total, lanes)
            assert packed * lanes + remainder == total
            assert 1 <= remainder <= lanes
            assert packed >= 0


def test_vector_trip_split_small_and_exact_counts():
    assert vector_trip_split(1, 4) == (0, 1)
    assert vector_trip_split(3, 4) == (0, 3)
    assert vector_trip_split(4, 4) == (0, 4)   # exact: still one full peel
    assert vector_trip_split(5, 4) == (1, 1)
    assert vector_trip_split(8, 2) == (3, 2)


def test_vector_trip_split_rejects_degenerate_inputs():
    with pytest.raises(ValueError):
        vector_trip_split(0, 4)
    with pytest.raises(ValueError):
        vector_trip_split(8, 1)


# -- schedule generation ------------------------------------------------------

def test_schedule_shape_for_legal_loop():
    analysis = analyze_image(_image(_doall_body(64)))
    schedule = generate_vector_schedule(analysis)
    kinds = sorted(r.rule_id.name for r in schedule.rules)
    assert kinds == ["VECT_BOUND", "VECT_CONVERT", "VECT_CONVERT",
                     "VECT_CONVERT", "VECT_CONVERT", "VECT_FINISH",
                     "VECT_INDUCTION_UPDATE", "VECT_INIT"]
    lanes = {r.data for r in schedule.rules
             if r.rule_id in (RuleID.VECT_CONVERT,
                              RuleID.VECT_INDUCTION_UPDATE)}
    assert lanes == {4}


def test_explicit_selection_of_illegal_loop_raises():
    analysis = analyze_image(_image(_doall_body(64, step=2, updater="add")))
    illegal = [v.loop_id for v in vector_candidates(analysis) if not v.ok]
    with pytest.raises(GenerationError):
        generate_vector_schedule(analysis, selected_loop_ids=illegal[:1])


# -- execution differentials --------------------------------------------------

def test_vectorised_run_bit_identical_even_multiple():
    _run_pair(_image(_doall_body(64)), 64)


def test_vectorised_run_bit_identical_odd_trip_count():
    # 61 = 15 packed chunks of 4 + a 1-iteration scalar epilogue.
    _run_pair(_image(_doall_body(61)), 61)


def test_trip_count_below_lane_width_takes_scalar_fallback():
    image = _image(_doall_body(3))
    analysis = analyze_image(image)
    schedule = generate_vector_schedule(analysis)
    ref = run_under_dbm(load(image))
    dbm = JanusDBM(load(image), schedule=schedule)
    ParallelRuntime(dbm)
    vec = dbm.run()
    assert [vec.machine.memory.read(B + 8 * i) for i in range(3)] \
        == [ref.machine.memory.read(B + 8 * i) for i in range(3)]
    assert vec.exit_code == ref.exit_code
    counters = dbm.registry.counters
    assert counters["runtime.vector.scalar_fallbacks"] >= 1
    assert counters.get("runtime.vector.packed_invocations", 0) == 0


def test_packed_invocation_and_epilogue_counters():
    image = _image(_doall_body(64))
    schedule = generate_vector_schedule(analyze_image(image))
    dbm = JanusDBM(load(image), schedule=schedule)
    ParallelRuntime(dbm)
    dbm.run()
    counters = dbm.registry.counters
    assert counters["runtime.vector.packed_invocations"] == 1
    # 64 trips at 4 lanes: 15 packed chunks + a 4-iteration peel.
    assert counters["runtime.vector.epilogue_peels"] == 4


def test_vectorised_run_reduces_cycles():
    ref, vec, _schedule = _run_pair(_image(_doall_body(256), seed_n=256),
                                    256)
    assert vec.cycles < ref.cycles
