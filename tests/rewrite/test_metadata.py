"""Tests for rewrite-schedule metadata records and runtime polynomials."""

import pytest

from repro.analysis.expr import Poly, poly_from_key, runtime_evaluable
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import R
from repro.rewrite.metadata import (
    LoopMeta,
    MetadataError,
    decode_operand,
    decode_var,
    encode_operand,
    encode_var,
    evaluate_runtime_poly,
    poly_to_runtime,
)

LIVEIN_RAX = ("livein", R.rax, 0)
LIVEIN_SLOT = ("livein", ("stack", -16), 2)


class TestVarCodes:
    def test_register_round_trip(self):
        assert decode_var(encode_var(R.rbx)) == R.rbx

    def test_slot_round_trip(self):
        assert decode_var(encode_var(("stack", -24))) == ("stack", -24)

    def test_bad_code(self):
        with pytest.raises(MetadataError):
            decode_var(("x", 1))


class TestOperandCodes:
    @pytest.mark.parametrize("operand", [
        Imm(42), Reg(R.rsi),
        Mem(base=R.r8, index=R.rcx, scale=8, disp=-16),
        Mem(disp=0x10000000),
    ])
    def test_round_trip(self, operand):
        assert decode_operand(encode_operand(operand)) == operand


class TestRuntimePoly:
    def read_var(self, var):
        if var == R.rax:
            return 10
        if var == ("stack", -16):
            return 3
        raise AssertionError(var)

    def test_linear(self):
        poly = Poly.sym(LIVEIN_RAX).scale(8) + Poly.const(100)
        form = poly_to_runtime(poly)
        assert evaluate_runtime_poly(form, self.read_var) == 180

    def test_product_of_liveins(self):
        product = Poly.sym(LIVEIN_RAX) * Poly.sym(LIVEIN_SLOT)
        form = poly_to_runtime(product)
        assert evaluate_runtime_poly(form, self.read_var) == 30

    def test_load_symbol_dereferences(self):
        # value at address (rax + 8) -- a memory-held base.
        addr_poly = Poly.sym(LIVEIN_RAX) + Poly.const(8)
        load_sym = ("load", addr_poly.key())
        poly = Poly.sym(load_sym).scale(2)
        form = poly_to_runtime(poly)
        memory = {18: 21}
        value = evaluate_runtime_poly(form, self.read_var,
                                      read_mem=lambda a: memory[a])
        assert value == 42

    def test_load_without_reader_raises(self):
        addr_poly = Poly.const(8)
        poly = Poly.sym(("load", addr_poly.key()))
        form = poly_to_runtime(poly)
        with pytest.raises(MetadataError):
            evaluate_runtime_poly(form, self.read_var)

    def test_opaque_symbol_rejected(self):
        poly = Poly.sym(("opaque", "x"))
        with pytest.raises(MetadataError):
            poly_to_runtime(poly)
        assert not runtime_evaluable(poly)

    def test_poly_from_key_round_trip(self):
        poly = Poly.sym(LIVEIN_RAX).scale(3) + Poly.const(-7)
        assert poly_from_key(poly.key()) == poly

    def test_runtime_evaluable_nested_load(self):
        inner = Poly.sym(LIVEIN_RAX)
        outer = Poly.sym(("load", inner.key()))
        assert runtime_evaluable(outer)
        bad = Poly.sym(("load", Poly.sym(("opaque", "z")).key()))
        assert not runtime_evaluable(bad)


class TestLoopMetaRecord:
    def test_round_trip(self):
        meta = LoopMeta(
            loop_id=3, header_addr=0x400100, preheader_addr=0x4000F0,
            exit_target=0x400200, iterator_var=("r", R.rcx), step=2,
            cond="l", test_offset=2, test_position="bottom",
            bound_form=("imm", 128), cmp_address=0x400150,
            iv_operand_index=0, static_trips=64, delta_header=-32,
            written_slots=[0, 8], readonly_slots=[-16],
            stm_sites=[0x400120],
        )
        clone = LoopMeta.from_record(meta.to_record())
        assert clone == meta

    def test_survives_cereal(self):
        from repro.rewrite import cereal

        meta = LoopMeta(
            loop_id=0, header_addr=1, preheader_addr=2, exit_target=3,
            iterator_var=("r", 1), step=1, cond="le", test_offset=1,
            test_position="top", bound_form=("poly", [(8, (("r", 2),))]),
            cmp_address=4, iv_operand_index=1, static_trips=-1,
            delta_header=0)
        record = cereal.loads(cereal.dumps(meta.to_record()))
        assert LoopMeta.from_record(record) == meta
