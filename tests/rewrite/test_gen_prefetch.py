"""Prefetch rewrite mode: rule derivation, cost crediting and execution."""

from repro.analysis import analyze_image
from repro.dbm.modifier import run_under_dbm
from repro.isa import Opcode as O
from repro.isa.costs import DEFAULT_COST_MODEL
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import R
from repro.jbin import layout
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.rewrite.gen_prefetch import generate_prefetch_schedule
from repro.rewrite.metadata import PrefetchDesc
from repro.rewrite.rules import RuleID

A = layout.DATA_BASE
B = layout.DATA_BASE + 0x10000
N = 96


def _image():
    a = Assembler()
    a.label("_start")
    a.emit(O.MOV, Reg(R.rcx), Imm(0))
    a.label("init")
    a.emit(O.CVTSI2SD, Reg(R.xmm0), Reg(R.rcx))
    a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=A), Reg(R.xmm0))
    a.emit(O.INC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(N))
    a.emit(O.JL, Label("init"))
    a.emit(O.MOV, Reg(R.rcx), Imm(0))
    a.label("loop")
    a.emit(O.MOVSD, Reg(R.xmm0), Mem(index=R.rcx, scale=8, disp=A))
    a.emit(O.ADDSD, Reg(R.xmm0), Reg(R.xmm0))
    a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=B), Reg(R.xmm0))
    a.emit(O.INC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(N))
    a.emit(O.JL, Label("loop"))
    a.emit(O.RET)
    return a.assemble(entry="_start")


def test_rules_derived_from_stride_analysis():
    analysis = analyze_image(_image())
    schedule = generate_prefetch_schedule(analysis)
    assert len(schedule.rules) >= 2  # both loops stride over memory
    for rule in schedule.rules:
        assert rule.rule_id is RuleID.MEM_PREFETCH
        desc = PrefetchDesc.from_record(schedule.record(rule.data))
        assert desc.stride == 8  # unit stride over 8-byte words
        assert desc.distance \
            == DEFAULT_COST_MODEL.prefetch_distance_iterations
        assert desc.access_address == rule.address


def test_distance_override():
    analysis = analyze_image(_image())
    schedule = generate_prefetch_schedule(analysis, distance=3)
    descs = [PrefetchDesc.from_record(schedule.record(r.data))
             for r in schedule.rules]
    assert all(d.distance == 3 for d in descs)


def test_selection_filter():
    analysis = analyze_image(_image())
    everything = generate_prefetch_schedule(analysis)
    loop_ids = {PrefetchDesc.from_record(everything.record(r.data)).loop_id
                for r in everything.rules}
    one = sorted(loop_ids)[:1]
    narrowed = generate_prefetch_schedule(analysis, selected_loop_ids=one)
    narrowed_ids = {PrefetchDesc.from_record(narrowed.record(r.data)).loop_id
                    for r in narrowed.rules}
    assert narrowed_ids == set(one)
    assert len(narrowed.rules) < len(everything.rules)


def test_prefetched_run_is_bit_identical_and_cheaper():
    image = _image()
    analysis = analyze_image(image)
    schedule = generate_prefetch_schedule(analysis)
    ref = run_under_dbm(load(image))
    hinted = run_under_dbm(load(image), schedule=schedule)
    assert [hinted.machine.memory.read(B + 8 * i) for i in range(N)] \
        == [ref.machine.memory.read(B + 8 * i) for i in range(N)]
    assert hinted.outputs == ref.outputs
    assert hinted.exit_code == ref.exit_code
    # The covered accesses are credited the modelled cache-hit saving.
    assert hinted.cycles < ref.cycles
