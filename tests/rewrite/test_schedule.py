"""Tests for the rewrite-schedule container and rule structures."""

import pytest

from repro.jbin.image import JELF, Section
from repro.rewrite.rules import RULE_SIZE, RewriteRule, RuleID
from repro.rewrite.schedule import RewriteSchedule, ScheduleError


def make_image(text=b"\x01\x02\x03"):
    return JELF(entry=0x400000,
                text=Section(".text", 0x400000, text),
                data=Section(".data", 0x10000000, b""))


def test_rule_pack_unpack():
    rule = RewriteRule(address=0x400900, rule_id=RuleID.MEM_PRIVATISE,
                       data=42)
    raw = rule.pack()
    assert len(raw) == RULE_SIZE
    assert RewriteRule.unpack(raw) == rule


def test_rule_ids_match_paper_count():
    from repro.rewrite.rules import PARALLEL_RULES, PROFILING_RULES

    assert len(PROFILING_RULES) == 6   # six major profiling rules
    assert len(PARALLEL_RULES) == 12   # twelve parallel transformation rules


def test_schedule_round_trip():
    image = make_image()
    schedule = RewriteSchedule.for_image(image)
    meta_index = schedule.add_record({"k": "loop", "id": 0})
    schedule.add_rule(0x400900, RuleID.LOOP_INIT, meta_index)
    schedule.add_rule(0x400905, RuleID.MEM_PRIVATISE, 7)
    clone = RewriteSchedule.deserialize(schedule.serialize())
    assert clone.rules == schedule.rules
    assert clone.pool == schedule.pool
    assert clone.verify_against(image)


def test_schedule_checksum_detects_wrong_binary():
    schedule = RewriteSchedule.for_image(make_image())
    other = make_image(text=b"\xAA\xBB")
    assert not schedule.verify_against(other)


def test_rule_order_preserved_per_address():
    schedule = RewriteSchedule.for_image(make_image())
    schedule.add_rule(0x400900, RuleID.MEM_BOUNDS_CHECK, 1)
    schedule.add_rule(0x400900, RuleID.MEM_BOUNDS_CHECK, 2)
    schedule.add_rule(0x400900, RuleID.LOOP_INIT, 0)
    index = schedule.build_index()
    kinds = [r.rule_id for r in index[0x400900]]
    assert kinds == [RuleID.MEM_BOUNDS_CHECK, RuleID.MEM_BOUNDS_CHECK,
                     RuleID.LOOP_INIT]
    datas = [r.data for r in index[0x400900][:2]]
    assert datas == [1, 2]


def test_bad_magic_and_truncation():
    with pytest.raises(ScheduleError):
        RewriteSchedule.deserialize(b"XXXX" + b"\x00" * 32)
    raw = RewriteSchedule.for_image(make_image()).serialize()
    with pytest.raises(ScheduleError):
        RewriteSchedule.deserialize(raw[:6])


def test_size_bytes_counts_everything():
    schedule = RewriteSchedule.for_image(make_image())
    empty_size = schedule.size_bytes
    schedule.add_rule(0x400900, RuleID.LOOP_INIT, 0)
    assert schedule.size_bytes == empty_size + RULE_SIZE


def test_identical_records_share_a_pool_slot():
    schedule = RewriteSchedule.for_image(make_image())
    first = schedule.add_record(("ms", 8))
    second = schedule.add_record(("ms", 8))
    third = schedule.add_record(("ms", 16))
    assert first == second
    assert third != first
    assert len(schedule.pool) == 2


def test_rule_families_cover_new_modes():
    from repro.rewrite.rules import (
        PREFETCH_RULES,
        RULE_FAMILIES,
        VECTOR_RULES,
    )

    assert len(VECTOR_RULES) == 5
    assert len(PREFETCH_RULES) == 1
    assert RULE_FAMILIES["vector"] == frozenset(int(r) for r in VECTOR_RULES)


def test_registered_unknown_rule_id_round_trips():
    from repro.rewrite.rules import register_rule_family, registered_rule_ids

    register_rule_family("test-extension", {77})
    assert 77 in registered_rule_ids()
    rule = RewriteRule(address=0x400900, rule_id=77, data=5)
    clone = RewriteRule.unpack(rule.pack())
    assert clone == rule
    assert int(clone.rule_id) == 77

    schedule = RewriteSchedule.for_image(make_image())
    schedule.add_rule(0x400900, 77, 5)
    schedule.add_rule(0x400903, RuleID.LOOP_INIT, 0)
    restored = RewriteSchedule.deserialize(schedule.serialize())
    assert restored.rules == schedule.rules
    assert restored.serialize() == schedule.serialize()


def test_unregistered_unknown_rule_id_is_a_format_error():
    from repro.rewrite.rules import ScheduleFormatError, registered_rule_ids

    assert 93 not in registered_rule_ids()
    raw = RewriteRule(address=0x400900, rule_id=93, data=0).pack()
    with pytest.raises(ScheduleFormatError):
        RewriteRule.unpack(raw)
