"""Tests for the Fig. 6 support paths: incompatible-loop coverage and
exclusive (innermost) attribution."""

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.analysis import LoopCategory, analyze_image
from repro.profiling import run_profiling
from repro.rewrite import generate_profile_schedule

RAX, RCX, RBX = Reg(R.rax), Reg(R.rcx), Reg(R.rbx)


def build_image():
    """An incompatible (pointer-chase) loop plus a nested compatible nest."""
    a = Assembler()
    a.word("links", *[(i * 7 + 1) % 64 for i in range(64)])
    arr = a.space("arr", 64)
    a.label("_start")
    # Pointer chase: the exit tests the *loaded* cursor, so there is no
    # recognisable induction variable -> incompatible.  links is the
    # permutation i -> (7i+1) mod 64; the cycle through node 1 has
    # length 16, and the outer counted loop re-runs it 30 times.
    a.emit(O.MOV, Reg(R.rdx), Imm(0))
    a.label("chase_outer")
    a.emit(O.MOV, RBX, Imm(1))
    a.label("chase")
    a.emit(O.MOV, RBX, Mem(index=R.rbx, scale=8, disp=Label("links")))
    a.emit(O.CMP, RBX, Imm(1))
    a.emit(O.JNE, Label("chase"))
    a.emit(O.INC, Reg(R.rdx))
    a.emit(O.CMP, Reg(R.rdx), Imm(30))
    a.emit(O.JL, Label("chase_outer"))
    # Nested compatible loops.
    a.emit(O.MOV, Reg(R.rsi), Imm(0))
    a.label("outer")
    a.emit(O.MOV, RCX, Imm(0))
    a.label("inner")
    a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RCX)
    a.emit(O.INC, RCX)
    a.emit(O.CMP, RCX, Imm(32))
    a.emit(O.JL, Label("inner"))
    a.emit(O.INC, Reg(R.rsi))
    a.emit(O.CMP, Reg(R.rsi), Imm(4))
    a.emit(O.JL, Label("outer"))
    a.emit(O.RET)
    return a.assemble(entry="_start")


def test_incompatible_loops_excluded_by_default():
    image = build_image()
    analysis = analyze_image(image)
    incompatible = [l.loop_id for l in analysis.loops
                    if l.category is LoopCategory.INCOMPATIBLE]
    assert incompatible
    schedule = generate_profile_schedule(analysis)
    profile, _ = run_profiling(load(image), schedule)
    for loop_id in incompatible:
        assert loop_id not in profile.loops


def test_incompatible_loops_covered_for_fig6():
    image = build_image()
    analysis = analyze_image(image)
    incompatible = [l.loop_id for l in analysis.loops
                    if l.category is LoopCategory.INCOMPATIBLE]
    schedule = generate_profile_schedule(analysis,
                                         include_incompatible=True)
    profile, _ = run_profiling(load(image), schedule)
    chase = incompatible[0]
    assert profile.coverage(chase) > 0.3  # 200 chase iterations dominate


def test_exclusive_attribution_is_disjoint():
    image = build_image()
    analysis = analyze_image(image)
    schedule = generate_profile_schedule(analysis,
                                         include_incompatible=True)
    profile, execution = run_profiling(load(image), schedule)
    # Exclusive counts never exceed inclusive ones...
    for loop_profile in profile.loops.values():
        assert loop_profile.instructions_exclusive <= \
            loop_profile.instructions
    # ... and sum to at most the whole execution (disjoint attribution).
    total_exclusive = sum(p.instructions_exclusive
                          for p in profile.loops.values())
    assert total_exclusive <= execution.instructions
    # The inner loop's exclusive time dwarfs the outer's own.
    loops = {l.loop_id: l for l in analysis.loops}
    inner = [i for i, l in loops.items() if l.loop.parent is not None][0]
    outer = [i for i, l in loops.items()
             if l.loop.parent is None and l.loop.children][0]
    assert profile.loops[inner].instructions_exclusive > \
        profile.loops[outer].instructions_exclusive