"""Tests for statically-driven coverage and dependence profiling."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label, LabelRef
from repro.isa.registers import R
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.analysis import LoopCategory, analyze_image
from repro.profiling import run_profiling
from repro.rewrite import generate_profile_schedule
from repro.rewrite.gen_profile import COVERAGE_STAGE, DEPENDENCE_STAGE

RAX, RCX, RBX = Reg(R.rax), Reg(R.rcx), Reg(R.rbx)
XMM0, XMM1 = Reg(R.xmm0), Reg(R.xmm1)


def build_image(build):
    a = Assembler()
    build(a)
    return a.assemble(entry="_start")


def hot_cold_image():
    """A hot 500-iteration loop and a cold 5-iteration loop."""

    def build(a):
        hot = a.space("hot", 500)
        cold = a.space("cold", 8)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("hot_loop")
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=hot), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(500))
        a.emit(O.JL, Label("hot_loop"))
        a.emit(O.MOV, RCX, Imm(0))
        a.label("cold_loop")
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=cold), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(5))
        a.emit(O.JL, Label("cold_loop"))
        a.emit(O.RET)

    return build_image(build)


class TestCoverage:
    def test_hot_loop_dominates(self):
        image = hot_cold_image()
        analysis = analyze_image(image)
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        profile, execution = run_profiling(load(image), schedule)
        hot = [l for l in analysis.loops
               if l.induction.iterator.static_trip_count == 500][0]
        cold = [l for l in analysis.loops
                if l.induction.iterator.static_trip_count == 5][0]
        assert profile.coverage(hot.loop_id) > 0.9
        assert profile.coverage(cold.loop_id) < 0.1
        assert profile.loops[hot.loop_id].iterations == 500
        assert profile.loops[hot.loop_id].invocations == 1
        assert profile.loops_above_coverage(0.5) == [hot.loop_id]

    def test_nested_loops_counted_inclusively(self):
        def build(a):
            arr = a.space("arr", 64)
            a.label("_start")
            a.emit(O.MOV, Reg(R.rsi), Imm(0))
            a.label("outer")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("inner")
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RCX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(8))
            a.emit(O.JL, Label("inner"))
            a.emit(O.INC, Reg(R.rsi))
            a.emit(O.CMP, Reg(R.rsi), Imm(10))
            a.emit(O.JL, Label("outer"))
            a.emit(O.RET)

        image = build_image(build)
        analysis = analyze_image(image)
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        profile, _ = run_profiling(load(image), schedule)
        outer = [l for l in analysis.loops if l.loop.parent is None
                 or True]  # find by nesting
        loops = {l.loop_id: l for l in analysis.loops}
        outer_id = [i for i, l in loops.items() if l.loop.parent is None][0]
        inner_id = [i for i, l in loops.items()
                    if l.loop.parent is not None][0]
        assert profile.loops[inner_id].invocations == 10
        assert profile.loops[inner_id].iterations == 80
        # The outer loop's instruction count includes the inner loop's.
        assert profile.loops[outer_id].instructions >= \
            profile.loops[inner_id].instructions

    def test_profiling_overhead_charged(self):
        image = hot_cold_image()
        analysis = analyze_image(image)
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        from repro.dbm.executor import run_native

        native = run_native(load(image))
        _, execution = run_profiling(load(image), schedule)
        assert execution.cycles > native.cycles


class TestDependenceProfiling:
    def _pointer_loop_image(self, src_off, dst_off):
        def build(a):
            a.word("pa", 0)
            a.word("pb", 0)
            data = a.space("data", 1024)
            a.label("_start")
            # pa/pb set from data+offsets at runtime via lea-style adds.
            a.emit(O.MOV, Reg(R.r8), Imm(0x10000010 + dst_off))
            a.emit(O.MOV, Reg(R.r9), Imm(0x10000010 + src_off))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Mem(base=R.r9, index=R.rcx, scale=8))
            a.emit(O.MOV, Mem(base=R.r8, index=R.rcx, scale=8), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(64))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        return build_image(build)

    def test_no_dependence_observed_for_disjoint(self):
        image = self._pointer_loop_image(src_off=0, dst_off=8 * 512)
        analysis = analyze_image(image)
        loop = analysis.loops[0]
        assert loop.category is LoopCategory.DYNAMIC_DOALL
        schedule = generate_profile_schedule(analysis, DEPENDENCE_STAGE)
        profile, _ = run_profiling(load(image), schedule)
        assert not profile.loops[loop.loop_id].has_dependence

    def test_dependence_observed_for_overlap(self):
        image = self._pointer_loop_image(src_off=0, dst_off=8)
        analysis = analyze_image(image)
        loop = analysis.loops[0]
        schedule = generate_profile_schedule(analysis, DEPENDENCE_STAGE)
        profile, _ = run_profiling(load(image), schedule)
        assert profile.loops[loop.loop_id].has_dependence
        assert profile.loops[loop.loop_id].dependence_samples

    def test_excall_profile_matches_pow_shape(self):
        """Profiling a loop with a pow@plt call reports the paper's shape:
        tens of instructions, ~11 heap reads, 0 writes per call."""

        def build(a):
            powf = a.import_symbol("pow")
            a.double("arr", *[0.01 * i for i in range(16)])
            a.word("p", 0x10000000)
            a.label("_start")
            a.emit(O.MOV, RBX, Imm(0))
            a.emit(O.MOV, Reg(R.r12), Mem(disp=Label("p")))
            a.label("loop")
            a.emit(O.MOVSD, XMM0, Mem(base=R.r12, index=R.rbx, scale=8))
            a.emit(O.MOVSD, XMM1, XMM0)
            a.emit(O.CALL, powf)
            a.emit(O.MOVSD, Mem(base=R.r12, index=R.rbx, scale=8), XMM0)
            a.emit(O.INC, RBX)
            a.emit(O.CMP, RBX, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        image = build_image(build)
        analysis = analyze_image(image)
        loop = analysis.loops[0]
        assert loop.category is LoopCategory.DYNAMIC_DOALL
        schedule = generate_profile_schedule(analysis, DEPENDENCE_STAGE)
        profile, _ = run_profiling(load(image), schedule)
        loop_profile = profile.loops[loop.loop_id]
        assert loop_profile.excalls
        excall = next(iter(loop_profile.excalls.values()))
        assert excall.name == "pow"
        assert excall.invocations == 16
        assert excall.reads_per_call == pytest.approx(11)
        assert excall.writes_per_call == 0
        assert 25 <= excall.instructions_per_call <= 60
