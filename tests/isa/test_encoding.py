"""Encode/decode round-trip tests for the JX byte format."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    Imm,
    Instruction,
    Mem,
    Opcode,
    Reg,
    decode_instruction,
    decode_range,
    encode_instruction,
    encode_program,
)
from repro.isa.decoder import DecodingError
from repro.isa.encoder import EncodingError, instruction_length
from repro.isa.operands import Label
from repro.isa.registers import NUM_REGS, R


def test_simple_round_trip():
    i = Instruction(Opcode.ADD, (Reg(R.rax), Imm(42)))
    raw = encode_instruction(i)
    out = decode_instruction(raw, 0, 0x400000)
    assert out.opcode is Opcode.ADD
    assert out.operands == (Reg(R.rax), Imm(42))
    assert out.address == 0x400000
    assert out.size == len(raw)


def test_mem_operand_round_trip():
    m = Mem(base=R.r8, index=R.rax, scale=4, disp=-8)
    raw = encode_instruction(Instruction(Opcode.MOV, (m, Reg(R.rsi))))
    out = decode_instruction(raw, 0, 0)
    assert out.operands[0] == m


def test_mem_without_base_or_index():
    m = Mem(disp=0x10000000)
    raw = encode_instruction(Instruction(Opcode.MOV, (Reg(R.rax), m)))
    out = decode_instruction(raw, 0, 0)
    assert out.operands[1] == m
    assert out.operands[1].base is None
    assert out.operands[1].index is None


def test_program_layout_assigns_addresses():
    prog = [
        Instruction(Opcode.MOV, (Reg(R.rax), Imm(1))),
        Instruction(Opcode.ADD, (Reg(R.rax), Reg(R.rbx))),
        Instruction(Opcode.RET),
    ]
    raw = encode_program(prog, base=0x400000)
    assert prog[0].address == 0x400000
    assert prog[1].address == 0x400000 + prog[0].size
    assert len(raw) == sum(p.size for p in prog)
    decoded = decode_range(raw, 0x400000, 0x400000)
    assert [d.opcode for d in decoded] == [p.opcode for p in prog]
    assert [d.address for d in decoded] == [p.address for p in prog]


def test_rtcall_cannot_be_encoded():
    with pytest.raises(EncodingError):
        encode_instruction(Instruction(Opcode.RTCALL, (Imm(1), Imm(2))))


def test_label_cannot_be_encoded():
    with pytest.raises(EncodingError):
        encode_instruction(Instruction(Opcode.JMP, (Label("loop"),)))


def test_invalid_opcode_rejected():
    with pytest.raises(DecodingError):
        decode_instruction(bytes([0xFE, 0]), 0, 0)


def test_truncated_bytes_rejected():
    raw = encode_instruction(Instruction(Opcode.MOV, (Reg(R.rax), Imm(5))))
    with pytest.raises(DecodingError):
        decode_instruction(raw[:-3], 0, 0)


def test_instruction_length_matches_encoding():
    cases = [
        Instruction(Opcode.RET),
        Instruction(Opcode.MOV, (Reg(R.rax), Imm(5))),
        Instruction(Opcode.ADD, (Mem(base=R.rcx, disp=8), Reg(R.rax))),
    ]
    for ins in cases:
        assert instruction_length(ins) == len(encode_instruction(ins))


# -- property-based round trip -------------------------------------------

_regs = st.integers(min_value=0, max_value=NUM_REGS - 1).map(Reg)
_imms = st.integers(min_value=-(2**63), max_value=2**63 - 1).map(Imm)
_mems = st.builds(
    Mem,
    base=st.one_of(st.none(), st.integers(0, NUM_REGS - 1)),
    index=st.one_of(st.none(), st.integers(0, NUM_REGS - 1)),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
_operands = st.one_of(_regs, _imms, _mems)
_opcodes = st.sampled_from([op for op in Opcode if op is not Opcode.RTCALL])


@given(op=_opcodes, operands=st.lists(_operands, max_size=3),
       addr=st.integers(min_value=0, max_value=2**40))
def test_round_trip_property(op, operands, addr):
    ins = Instruction(op, tuple(operands))
    raw = encode_instruction(ins)
    out = decode_instruction(raw, 0, addr)
    assert out.opcode == ins.opcode
    assert out.operands == ins.operands
    assert out.size == len(raw)
    assert out.address == addr


@given(st.lists(st.builds(Instruction, _opcodes,
                          st.lists(_operands, max_size=3).map(tuple)),
                min_size=1, max_size=20))
def test_program_round_trip_property(prog):
    raw = encode_program(prog, base=0x1000)
    decoded = decode_range(raw, 0x1000, 0x1000)
    assert len(decoded) == len(prog)
    for got, want in zip(decoded, prog):
        assert got.opcode == want.opcode
        assert got.operands == want.operands
