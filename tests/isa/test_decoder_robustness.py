"""Robustness tests for the JX decoder on malformed byte streams.

The static analyser decodes attacker-controlled (well, user-supplied)
binaries, so the decoder must fail with ``DecodingError`` — never an
uncaught ``IndexError``/``struct.error`` — on any truncated or corrupt
input.
"""

import pytest
from hypothesis import given, strategies as st

from repro.isa.decoder import DecodingError, decode_instruction, decode_range
from repro.isa.encoder import encode_instruction
from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import R


def roundtrip(ins: Instruction) -> Instruction:
    data = encode_instruction(ins)
    return decode_instruction(data, 0, 0x1000)


def test_empty_data_is_truncation():
    with pytest.raises(DecodingError, match="truncated"):
        decode_instruction(b"", 0, 0x400000)


def test_missing_operand_count_byte():
    data = encode_instruction(Instruction(Opcode.RET, ()))
    with pytest.raises(DecodingError, match="truncated"):
        decode_instruction(data[:1], 0, 0x400000)


def test_invalid_opcode_reports_address():
    with pytest.raises(DecodingError, match="0x400000"):
        decode_instruction(b"\xff\x00", 0, 0x400000)


def test_rtcall_opcode_not_decodable():
    # RTCALL is a DBM-internal pseudo-op: it never appears in a binary,
    # so raw bytes carrying its opcode are malformed input.
    with pytest.raises(DecodingError, match="invalid opcode"):
        decode_instruction(bytes([int(Opcode.RTCALL), 0]), 0, 0)


def test_invalid_operand_tag():
    base = encode_instruction(
        Instruction(Opcode.MOV, (Reg(R.rax), Imm(1))))
    corrupt = bytearray(base)
    corrupt[2] = 0x7f  # first operand tag
    with pytest.raises(DecodingError, match="invalid operand tag"):
        decode_instruction(bytes(corrupt), 0, 0)


def test_truncated_immediate():
    data = encode_instruction(
        Instruction(Opcode.MOV, (Reg(R.rax), Imm(0x1122334455))))
    with pytest.raises(DecodingError, match="truncated"):
        decode_instruction(data[:-3], 0, 0)


def test_truncated_memory_operand():
    data = encode_instruction(Instruction(
        Opcode.MOV, (Reg(R.rax),
                     Mem(base=R.rbx, index=R.rcx, scale=8, disp=64))))
    with pytest.raises(DecodingError, match="truncated"):
        decode_instruction(data[:-1], 0, 0)


@pytest.mark.parametrize("ins", [
    Instruction(Opcode.RET, ()),
    Instruction(Opcode.MOV, (Reg(R.r15), Imm(-1))),
    Instruction(Opcode.MOV, (Reg(R.rax), Mem(base=R.rsp, disp=-8))),
    Instruction(Opcode.ADD, (Mem(index=R.rdi, scale=4, disp=0x6000),
                             Reg(R.rdx))),
])
def test_roundtrip_preserves_operands(ins):
    out = roundtrip(ins)
    assert out.opcode is ins.opcode
    assert out.operands == ins.operands
    assert out.address == 0x1000
    assert out.size == len(encode_instruction(ins))


@given(st.binary(min_size=0, max_size=40))
def test_arbitrary_bytes_never_crash(data):
    # Fuzz: any byte soup either decodes or raises DecodingError.
    try:
        decode_instruction(data, 0, 0x400000)
    except DecodingError:
        pass


@given(st.integers(min_value=-2**63, max_value=2**63 - 1))
def test_immediate_values_roundtrip(value):
    out = roundtrip(Instruction(Opcode.MOV, (Reg(R.rax), Imm(value))))
    assert out.operands[1].value == value


@given(st.integers(min_value=-2**31, max_value=2**31 - 1),
       st.sampled_from([1, 2, 4, 8]))
def test_memory_displacement_roundtrip(disp, scale):
    ins = Instruction(Opcode.MOV, (
        Reg(R.rbx), Mem(base=R.rsi, index=R.rcx, scale=scale, disp=disp)))
    out = roundtrip(ins)
    mem = out.operands[1]
    assert (mem.base, mem.index, mem.scale, mem.disp) == \
        (R.rsi, R.rcx, scale, disp)


def test_decode_range_splits_stream_correctly():
    stream = b"".join([
        encode_instruction(Instruction(Opcode.MOV, (Reg(R.rax), Imm(7)))),
        encode_instruction(Instruction(Opcode.INC, (Reg(R.rax),))),
        encode_instruction(Instruction(Opcode.RET, ())),
    ])
    out = decode_range(stream, base=0x400000, start=0x400000)
    assert [i.opcode for i in out] == [Opcode.MOV, Opcode.INC, Opcode.RET]
    # Addresses chain: each instruction starts where the previous ends.
    for prev, cur in zip(out, out[1:]):
        assert cur.address == prev.address + prev.size


def test_decode_range_respects_end():
    one = encode_instruction(Instruction(Opcode.RET, ()))
    stream = one * 3
    out = decode_range(stream, base=0x1000, start=0x1000,
                       end=0x1000 + 2 * len(one))
    assert len(out) == 2
