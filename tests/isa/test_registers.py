"""Tests for the JX register file definition."""

import pytest

from repro.isa import registers as regs
from repro.isa.registers import (
    R,
    is_gpr,
    is_xmm,
    reg_id,
    reg_name,
)


def test_gpr_numbering_matches_x86():
    assert reg_id("rax") == 0
    assert reg_id("rcx") == 1
    assert reg_id("rdx") == 2
    assert reg_id("rbx") == 3
    assert reg_id("rsp") == 4
    assert reg_id("rbp") == 5
    assert reg_id("r15") == 15


def test_xmm_registers_follow_gprs():
    assert reg_id("xmm0") == regs.XMM_BASE
    assert reg_id("xmm15") == regs.XMM_BASE + 15


def test_round_trip_all_names():
    for rid in range(regs.NUM_REGS):
        assert reg_id(reg_name(rid)) == rid


def test_classification():
    assert is_gpr(reg_id("rsp"))
    assert not is_gpr(reg_id("xmm1"))
    assert is_xmm(reg_id("xmm1"))
    assert not is_xmm(reg_id("r8"))


def test_namespace_access():
    assert R.rax == 0
    assert R.xmm2 == regs.XMM_BASE + 2
    with pytest.raises(AttributeError):
        R.not_a_register


def test_unknown_name_raises():
    with pytest.raises(ValueError):
        reg_id("eax")  # 32-bit names are not part of JX
    with pytest.raises(ValueError):
        reg_name(99)


def test_abi_roles_are_distinct():
    assert regs.TLS_REG == reg_id("r15")
    assert regs.SCRATCH_REG == reg_id("r14")
    assert regs.STACK_REG == reg_id("rsp")
    assert regs.TLS_REG in regs.CALLEE_SAVED
    assert len(set(regs.ARG_REGS)) == 6
