"""Tests for JX instruction metadata (use/def sets, classification)."""

from repro.isa import Imm, Instruction, Mem, Opcode, Reg
from repro.isa.instructions import FLAGS_REG, replace_operand
from repro.isa.registers import R


def ins(op, *operands):
    return Instruction(op, tuple(operands))


class TestClassification:
    def test_cond_branch(self):
        j = ins(Opcode.JLE, Imm(0x400))
        assert j.is_cond_branch
        assert j.is_control
        assert not j.is_jump
        assert j.branch_target() == 0x400

    def test_direct_jump_and_call(self):
        assert ins(Opcode.JMP, Imm(8)).is_jump
        assert ins(Opcode.CALL, Imm(8)).is_call
        assert ins(Opcode.CALL, Imm(8)).branch_target() == 8

    def test_indirect(self):
        assert ins(Opcode.JMPI, Reg(R.rax)).is_indirect
        assert ins(Opcode.JMPI, Reg(R.rax)).branch_target() is None
        assert ins(Opcode.CALLI, Mem(base=R.rbx)).is_indirect

    def test_ret_and_hlt_are_control(self):
        assert ins(Opcode.RET).is_control
        assert ins(Opcode.HLT).is_control
        assert not ins(Opcode.ADD, Reg(R.rax), Imm(1)).is_control

    def test_packed_lanes(self):
        assert ins(Opcode.ADDPD, Reg(R.xmm0), Reg(R.xmm1)).lanes == 2
        assert ins(Opcode.VADDPD, Reg(R.xmm0), Reg(R.xmm1)).lanes == 4
        assert ins(Opcode.ADDSD, Reg(R.xmm0), Reg(R.xmm1)).lanes == 1


class TestUseDef:
    def test_mov_reg_reg(self):
        i = ins(Opcode.MOV, Reg(R.rax), Reg(R.rbx))
        assert i.reg_uses() == {R.rbx}
        assert i.reg_defs() == {R.rax}

    def test_mov_does_not_write_flags(self):
        assert FLAGS_REG not in ins(Opcode.MOV, Reg(R.rax), Imm(1)).reg_defs()

    def test_add_is_rmw_and_writes_flags(self):
        i = ins(Opcode.ADD, Reg(R.rax), Reg(R.rbx))
        assert i.reg_uses() == {R.rax, R.rbx}
        assert i.reg_defs() == {R.rax, FLAGS_REG}

    def test_mem_operand_contributes_address_registers(self):
        m = Mem(base=R.r8, index=R.rax, scale=4, disp=8)
        i = ins(Opcode.MOV, m, Reg(R.rsi))
        assert i.reg_uses() == {R.r8, R.rax, R.rsi}
        assert i.reg_defs() == set()
        assert i.mem_writes() == [m]
        assert i.mem_reads() == []

    def test_load_has_mem_read(self):
        m = Mem(base=R.r9, disp=16)
        i = ins(Opcode.MOV, Reg(R.rdx), m)
        assert i.mem_reads() == [m]
        assert i.mem_writes() == []

    def test_rmw_memory_destination_reads_and_writes(self):
        m = Mem(base=R.rcx)
        i = ins(Opcode.ADD, m, Reg(R.rax))
        assert i.mem_reads() == [m]
        assert i.mem_writes() == [m]

    def test_lea_reads_no_memory(self):
        m = Mem(base=R.r8, index=R.rax, scale=8)
        i = ins(Opcode.LEA, Reg(R.rdx), m)
        assert i.mem_reads() == []
        assert i.mem_writes() == []
        assert i.reg_uses() == {R.r8, R.rax}
        assert i.reg_defs() == {R.rdx}

    def test_cmp_sets_flags_reads_both(self):
        i = ins(Opcode.CMP, Reg(R.rsi), Imm(10000))
        assert i.reg_uses() == {R.rsi}
        assert i.reg_defs() == {FLAGS_REG}

    def test_cond_branch_reads_flags(self):
        assert FLAGS_REG in ins(Opcode.JLE, Imm(0)).reg_uses()

    def test_cmov_reads_dest_source_and_flags(self):
        i = ins(Opcode.CMOVLE, Reg(R.rax), Reg(R.rbx))
        assert i.reg_uses() == {R.rax, R.rbx, FLAGS_REG}
        assert i.reg_defs() == {R.rax}

    def test_xorpd_zero_idiom_has_no_uses(self):
        i = ins(Opcode.XORPD, Reg(R.xmm0), Reg(R.xmm0))
        assert i.reg_uses() == set()
        assert i.reg_defs() == {R.xmm0}

    def test_inc_dec(self):
        i = ins(Opcode.INC, Reg(R.rax))
        assert i.reg_uses() == {R.rax}
        assert R.rax in i.reg_defs()
        assert FLAGS_REG in i.reg_defs()


def test_replace_operand_is_nondestructive():
    original = ins(Opcode.ADD, Mem(base=R.rcx), Reg(R.rax))
    original.address = 0x400900
    new = replace_operand(original, 0, Mem(base=R.r15, disp=0x20))
    assert original.operands[0] == Mem(base=R.rcx)
    assert new.operands[0] == Mem(base=R.r15, disp=0x20)
    assert new.address == original.address
    assert new.opcode is original.opcode
