"""Tests for the cycle cost model."""

from repro.isa import CostModel, Imm, Instruction, Mem, Opcode, Reg, instruction_cycles
from repro.isa.costs import DEFAULT_COST_MODEL, MEM_OPERAND_CYCLES
from repro.isa.registers import R


def test_default_alu_cost_is_one():
    assert instruction_cycles(Instruction(Opcode.ADD, (Reg(R.rax), Imm(1)))) == 1


def test_memory_operand_adds_cost():
    reg_form = Instruction(Opcode.ADD, (Reg(R.rax), Reg(R.rbx)))
    mem_form = Instruction(Opcode.ADD, (Reg(R.rax), Mem(base=R.rbx)))
    assert instruction_cycles(mem_form) == (
        instruction_cycles(reg_form) + MEM_OPERAND_CYCLES)


def test_divide_much_more_expensive_than_add():
    div = Instruction(Opcode.IDIV, (Reg(R.rax), Reg(R.rbx)))
    add = Instruction(Opcode.ADD, (Reg(R.rax), Reg(R.rbx)))
    assert instruction_cycles(div) >= 10 * instruction_cycles(add)


def test_packed_ops_cost_same_as_scalar():
    scalar = Instruction(Opcode.ADDSD, (Reg(R.xmm0), Reg(R.xmm1)))
    packed = Instruction(Opcode.ADDPD, (Reg(R.xmm0), Reg(R.xmm1)))
    assert instruction_cycles(packed) == instruction_cycles(scalar)


def test_cost_model_copy_is_independent():
    model = CostModel()
    clone = model.copy()
    clone.translate_cycles_per_instruction = 999
    assert model.translate_cycles_per_instruction != 999
    assert DEFAULT_COST_MODEL.translate_cycles_per_instruction != 999


def test_syscall_is_expensive():
    sc = Instruction(Opcode.SYSCALL)
    assert instruction_cycles(sc) >= 100
