"""Tests for the command-line toolchain (the deployment workflow)."""

import json

import pytest

from repro.cli import main
from repro.telemetry.core import disable, get_recorder

SOURCE = """
int n = 400;
double a[400];
double b[400];

int main() {
    int i;
    int reps = read_int();
    int r;
    double s = 0.0;
    for (i = 0; i < n; i++) { b[i] = 0.5 * i; }
    for (r = 0; r < reps; r++) {
        for (i = 0; i < n; i++) { a[i] = b[i] * 3.0 + 1.0; }
    }
    for (i = 0; i < n; i++) { s += a[i]; }
    print_double(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli")
    source = directory / "app.jc"
    source.write_text(SOURCE)
    return directory


def test_full_workflow(workspace, capsys):
    source = workspace / "app.jc"
    binary = workspace / "app.jelf"
    schedule = workspace / "app.jrs"

    assert main(["compile", str(source), "-o", str(binary), "-O", "3"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "jcc-gcc" in out
    assert binary.exists()

    assert main(["analyze", str(binary)]) == 0
    out = capsys.readouterr().out
    assert "static_doall" in out
    assert "loops" in out

    assert main(["schedule", str(binary), "-o", str(schedule),
                 "--train-input", "1"]) == 0
    out = capsys.readouterr().out
    assert "rules" in out
    assert schedule.exists()

    # Native run.
    code = main(["run", str(binary), "--input", "2"])
    native_out = capsys.readouterr().out.strip()
    assert code == 0

    # Janus run from the serialized artefacts only.
    code = main(["run", str(binary), "--schedule", str(schedule),
                 "--threads", "4", "--input", "2"])
    janus_out = capsys.readouterr().out.strip()
    assert code == 0
    assert abs(float(janus_out) - float(native_out)) <= \
        1e-9 * max(1.0, abs(float(native_out)))


def test_dbm_mode(workspace, capsys):
    binary = workspace / "app.jelf"
    assert main(["run", str(binary), "--mode", "dbm", "--input", "1"]) == 0
    assert capsys.readouterr().out.strip()


def test_compile_personalities(workspace, capsys):
    source = workspace / "app.jc"
    for extra in (["--personality", "icc"], ["--mavx"], ["--parallel"]):
        output = workspace / f"app_{extra[0].strip('-')}.jelf"
        assert main(["compile", str(source), "-o", str(output)] + extra) == 0
        assert output.exists()
    capsys.readouterr()


def test_analyze_jobs_output_identical(workspace, capsys):
    """`analyze --jobs 2` must print exactly the serial report."""
    binary = workspace / "app.jelf"
    assert main(["analyze", str(binary)]) == 0
    serial_out = capsys.readouterr().out
    assert main(["analyze", str(binary), "--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial_out


def test_table2_figure(capsys):
    assert main(["figures", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Janus" in out and "Dynamic DOALL" in out


def test_figures_rejects_unknown_name(capsys):
    assert main(["figures", "fig99"]) == 2
    assert "unknown figures" in capsys.readouterr().err


def test_figures_fig_option_normalises_numbers(capsys):
    # "--fig 99" normalises to fig99, which does not exist: proves the
    # option feeds the same resolution path as the positional form.
    assert main(["figures", "--fig", "99"]) == 2
    assert "fig99" in capsys.readouterr().err


def test_run_stats_json_and_stable_stderr(workspace, capsys, tmp_path):
    binary = workspace / "app.jelf"
    stats_path = tmp_path / "stats.json"
    assert main(["run", str(binary), "--mode", "dbm", "--input", "1",
                 "--stats-json", str(stats_path)]) == 0
    err = capsys.readouterr().err
    stats_lines = [line for line in err.splitlines()
                   if line.startswith("[stats] ")]
    assert len(stats_lines) == 1
    # The stderr summary is machine-parseable, sorted JSON.
    summary = json.loads(stats_lines[0][len("[stats] "):])
    assert list(summary) == sorted(summary)
    assert all(value for value in summary.values())
    payload = json.loads(stats_path.read_text())
    assert payload["exit_code"] == 0
    assert payload["cycles"] > 0
    assert list(payload["stats"]) == sorted(payload["stats"])
    # The file keeps zero-valued counters; stderr elides them.
    assert set(summary) <= set(payload["stats"])
    assert payload["stats"]["translated_blocks"] \
        == summary["translated_blocks"]


def test_jit_dump_command(capsys):
    assert main(["jit-dump", "462.libquantum"]) == 0
    captured = capsys.readouterr()
    assert "[fast]" in captured.out
    assert "def _jx_" in captured.out
    # The hot multi-block loop gets stitched into a superblock.
    assert "[superblock]" in captured.out
    assert "def _jsb_" in captured.out
    assert "compiled runners printed" in captured.err

    # --pc narrows the dump to one block (here: the superblock head).
    head = next(line.split()[1] for line in captured.out.splitlines()
                if line.startswith("-- ") and "[superblock]" in line)
    assert main(["jit-dump", "462.libquantum", "--pc", head]) == 0
    captured = capsys.readouterr()
    assert "def _jsb_" in captured.out
    assert all(line.split()[1] == head
               for line in captured.out.splitlines()
               if line.startswith("-- "))

    assert main(["jit-dump", "no.such"]) == 2
    assert "unknown workload" in capsys.readouterr().err
    assert main(["jit-dump", "462.libquantum", "--pc", "0x1"]) == 1
    assert "no block at 0x1" in capsys.readouterr().err
    assert main(["jit-dump", "462.libquantum", "--pc", "zap"]) == 2
    assert "bad --pc" in capsys.readouterr().err


def test_trace_and_stats_commands(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    try:
        assert main(["trace", "470.lbm", "-o", str(trace_path),
                     "--mode", "native",
                     "--metrics-out", str(metrics_path)]) == 0
    finally:
        disable()
    out = capsys.readouterr().out
    assert "spans" in out and "cycles" in out
    assert get_recorder().enabled is False  # trace cleans up after itself

    trace = json.loads(trace_path.read_text())
    span_names = {e["name"] for e in trace["traceEvents"]
                  if e["ph"] == "X"}
    assert "exec.native" in span_names and "native.run" in span_names
    assert trace["metrics"]["counters"]["jit.blocks_translated"] > 0
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"] == trace["metrics"]["counters"]

    assert main(["stats", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "[jit]" in out
    assert "jit.blocks_translated" in out
    assert "exec.native" in out

    assert main(["stats", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "jit.blocks_translated" in out

    missing = tmp_path / "missing.json"
    assert main(["stats", str(missing)]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_racecheck_command(capsys, tmp_path):
    out = tmp_path / "racecheck.json"
    assert main(["racecheck", "470.lbm", "--mode", "parallel",
                 "-o", str(out)]) == 0
    captured = capsys.readouterr()
    assert "470.lbm" in captured.out
    payload = json.loads(out.read_text())
    assert payload["possible_races"] == 0
    assert payload["unsound_static_loops"] == 0
    assert payload["reports"]
    report = payload["reports"][0]
    assert report["workload"] == "470.lbm"
    proven = [p for p in report["pairs"]
              if p["verdict"] == "proven_disjoint"]
    assert all(p["chain"] for p in proven)
