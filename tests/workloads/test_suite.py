"""Tests for the workload suite: registry, compilation, correctness oracle."""

import pytest

from repro.dbm.executor import run_native
from repro.jbin.loader import load
from repro.jcc import CompileOptions
from repro.pipeline import Janus, JanusConfig, SelectionMode
from repro.workloads import (
    FIG7_BENCHMARKS,
    SUITE,
    all_benchmarks,
    compile_workload,
    get_workload,
)


def outputs_close(a, b):
    if len(a) != len(b):
        return False
    for (k1, v1), (k2, v2) in zip(a, b):
        if k1 != k2:
            return False
        if k1 == "i":
            if v1 != v2:
                return False
        elif abs(v1 - v2) > 1e-9 * max(1.0, abs(v1)):
            return False
    return True


class TestRegistry:
    def test_twenty_five_benchmarks(self):
        assert len(SUITE) == 25
        assert len(all_benchmarks()) == 25

    def test_fig7_set_is_the_papers(self):
        assert set(FIG7_BENCHMARKS) == {
            "410.bwaves", "433.milc", "436.cactusADM", "437.leslie3d",
            "459.GemsFDTD", "462.libquantum", "464.h264ref", "470.lbm",
            "482.sphinx3"}
        assert set(FIG7_BENCHMARKS) <= set(SUITE)

    def test_train_inputs_smaller_than_ref(self):
        for name in all_benchmarks():
            workload = get_workload(name)
            assert sum(workload.train_inputs) <= sum(workload.ref_inputs)

    def test_compile_cache(self):
        first = compile_workload("470.lbm")
        second = compile_workload("470.lbm")
        assert first is second
        different = compile_workload("470.lbm", CompileOptions(opt_level=2))
        assert different is not first


@pytest.mark.parametrize("name", all_benchmarks())
def test_runs_deterministically(name):
    workload = get_workload(name)
    image = compile_workload(name)
    first = run_native(load(image, inputs=list(workload.train_inputs)))
    second = run_native(load(image, inputs=list(workload.train_inputs)))
    assert first.outputs == second.outputs
    assert first.cycles == second.cycles
    assert first.outputs  # every workload prints something


@pytest.mark.parametrize("name", FIG7_BENCHMARKS)
def test_parallel_oracle(name):
    """Full Janus run must match native output on every hero benchmark."""
    workload = get_workload(name)
    image = compile_workload(name)
    native = run_native(load(image, inputs=list(workload.ref_inputs)))
    janus = Janus(image, JanusConfig(n_threads=8))
    training = janus.train(train_inputs=list(workload.train_inputs))
    result = janus.run(SelectionMode.JANUS, inputs=list(workload.ref_inputs),
                       training=training)
    assert outputs_close(native.outputs, result.outputs)
    assert result.exit_code == native.exit_code


@pytest.mark.parametrize("name", ["462.libquantum", "470.lbm"])
def test_stars_actually_speed_up(name):
    workload = get_workload(name)
    image = compile_workload(name)
    native = run_native(load(image, inputs=list(workload.ref_inputs)))
    janus = Janus(image, JanusConfig(n_threads=8))
    training = janus.train(train_inputs=list(workload.train_inputs))
    result = janus.run(SelectionMode.JANUS, inputs=list(workload.ref_inputs),
                       training=training)
    assert native.cycles / result.cycles > 3.0
