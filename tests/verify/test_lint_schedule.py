"""Tier 2: the schedule linter against generated and corrupted schedules."""

from repro.analysis import analyze_image
from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.rewrite import (
    generate_parallel_schedule,
    generate_prefetch_schedule,
    generate_profile_schedule,
    generate_vector_schedule,
)
from repro.rewrite.gen_profile import COVERAGE_STAGE, DEPENDENCE_STAGE
from repro.rewrite.rules import RewriteRule, RuleID, register_rule_family
from repro.verify import lint_schedule
from repro.verify.findings import Severity

from tests.analysis.conftest import assemble

RCX = Reg(R.rcx)


def doall_image():
    def build(a):
        a.space("arr", 64)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


def fp_doall_image():
    """A floating-point DOALL body the vector legality whitelist accepts."""
    def build(a):
        a.space("src", 64 * 8)
        a.space("dst", 64 * 8)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("init")
        a.emit(O.CVTSI2SD, Reg(R.xmm0), RCX)
        a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=Label("src")),
               Reg(R.xmm0))
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("init"))
        a.emit(O.MOV, Reg(R.rax), Imm(3))
        a.emit(O.CVTSI2SD, Reg(R.xmm1), Reg(R.rax))
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOVSD, Reg(R.xmm0),
               Mem(index=R.rcx, scale=8, disp=Label("src")))
        a.emit(O.MULSD, Reg(R.xmm0), Reg(R.xmm1))
        a.emit(O.MOVSD, Mem(index=R.rcx, scale=8, disp=Label("dst")),
               Reg(R.xmm0))
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


def checks(findings):
    return {f.check for f in findings}


class TestCleanSchedules:
    def test_coverage_schedule_lints_clean(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        assert lint_schedule(analysis, schedule) == []

    def test_dependence_schedule_lints_clean(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis,
                                             stage=DEPENDENCE_STAGE)
        assert lint_schedule(analysis, schedule) == []

    def test_parallel_schedule_lints_clean(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        assert lint_schedule(analysis, schedule) == []

    def test_vector_schedule_lints_clean(self):
        analysis = analyze_image(fp_doall_image())
        schedule = generate_vector_schedule(analysis)
        assert len(schedule)  # the compute loop is vectorisable
        assert lint_schedule(analysis, schedule) == []

    def test_prefetch_schedule_lints_clean(self):
        analysis = analyze_image(fp_doall_image())
        schedule = generate_prefetch_schedule(analysis)
        assert len(schedule)
        assert lint_schedule(analysis, schedule) == []


class TestCorruptedSchedules:
    def test_off_boundary_address(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(RewriteRule(
            address=0xDEAD01, rule_id=RuleID.PROF_LOOP_ITER, data=0))
        assert "rule.address-boundary" in checks(
            lint_schedule(analysis, schedule))

    def test_unknown_rule_id(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(RewriteRule(
            address=schedule.rules[0].address, rule_id=99, data=0))
        assert "rule.unknown-id" in checks(lint_schedule(analysis, schedule))

    def test_exact_duplicate_rule(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(schedule.rules[0])
        assert "rule.duplicate" in checks(lint_schedule(analysis, schedule))

    def test_pool_index_out_of_range(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        bad = len(schedule.pool) + 5
        schedule.rules.append(RewriteRule(
            address=schedule.rules[0].address,
            rule_id=RuleID.THREAD_SCHEDULE, data=bad))
        assert "rule.operand-range" in checks(
            lint_schedule(analysis, schedule))

    def test_missing_loop_finish(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules = [r for r in schedule.rules
                          if r.rule_id is not RuleID.PROF_LOOP_FINISH]
        assert "rule.prof-bracket" in checks(
            lint_schedule(analysis, schedule))

    def test_misplaced_loop_init(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        moved = []
        for rule in schedule.rules:
            if rule.rule_id is RuleID.LOOP_INIT:
                # Shift LOOP_INIT onto another real instruction boundary.
                target = next(a for a in analysis.disassembly.instructions
                              if a != rule.address)
                rule = RewriteRule(address=target, rule_id=rule.rule_id,
                                   data=rule.data)
            moved.append(rule)
        schedule.rules = moved
        assert "rule.init-placement" in checks(
            lint_schedule(analysis, schedule))

    def test_checksum_mismatch(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.text_checksum ^= 0xFFFF
        assert "schedule.checksum" in checks(
            lint_schedule(analysis, schedule))

    def test_registered_extension_id_warns_instead_of_erroring(self):
        register_rule_family("lint-extension", {88})
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(RewriteRule(
            address=schedule.rules[0].address, rule_id=88, data=0))
        findings = lint_schedule(analysis, schedule)
        extension = [f for f in findings if f.check == "rule.extension-id"]
        assert len(extension) == 1
        assert extension[0].severity is Severity.WARNING
        assert "rule.unknown-id" not in checks(findings)

    def test_missing_vect_finish(self):
        analysis = analyze_image(fp_doall_image())
        schedule = generate_vector_schedule(analysis)
        schedule.rules = [r for r in schedule.rules
                          if r.rule_id is not RuleID.VECT_FINISH]
        assert "rule.vect-pairing" in checks(
            lint_schedule(analysis, schedule))

    def test_misplaced_vect_init(self):
        analysis = analyze_image(fp_doall_image())
        schedule = generate_vector_schedule(analysis)
        moved = []
        for rule in schedule.rules:
            if rule.rule_id is RuleID.VECT_INIT:
                target = next(a for a in analysis.disassembly.instructions
                              if a != rule.address)
                rule = RewriteRule(address=target, rule_id=rule.rule_id,
                                   data=rule.data)
            moved.append(rule)
        schedule.rules = moved
        assert "rule.vect-init-placement" in checks(
            lint_schedule(analysis, schedule))

    def test_vect_lane_count_out_of_range(self):
        analysis = analyze_image(fp_doall_image())
        schedule = generate_vector_schedule(analysis)
        schedule.rules = [
            RewriteRule(address=r.address, rule_id=r.rule_id, data=3)
            if r.rule_id is RuleID.VECT_CONVERT else r
            for r in schedule.rules]
        assert "rule.operand-range" in checks(
            lint_schedule(analysis, schedule))

    def test_linter_never_raises_on_garbage(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(RewriteRule(address=2**63, rule_id=7, data=-1))
        findings = lint_schedule(analysis, schedule)
        assert findings  # reported, not raised
