"""Tier 2: the schedule linter against generated and corrupted schedules."""

from repro.analysis import analyze_image
from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.rewrite import (
    generate_parallel_schedule,
    generate_profile_schedule,
)
from repro.rewrite.gen_profile import COVERAGE_STAGE, DEPENDENCE_STAGE
from repro.rewrite.rules import RewriteRule, RuleID
from repro.verify import lint_schedule

from tests.analysis.conftest import assemble

RCX = Reg(R.rcx)


def doall_image():
    def build(a):
        a.space("arr", 64)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


def checks(findings):
    return {f.check for f in findings}


class TestCleanSchedules:
    def test_coverage_schedule_lints_clean(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        assert lint_schedule(analysis, schedule) == []

    def test_dependence_schedule_lints_clean(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis,
                                             stage=DEPENDENCE_STAGE)
        assert lint_schedule(analysis, schedule) == []

    def test_parallel_schedule_lints_clean(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        assert lint_schedule(analysis, schedule) == []


class TestCorruptedSchedules:
    def test_off_boundary_address(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(RewriteRule(
            address=0xDEAD01, rule_id=RuleID.PROF_LOOP_ITER, data=0))
        assert "rule.address-boundary" in checks(
            lint_schedule(analysis, schedule))

    def test_unknown_rule_id(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(RewriteRule(
            address=schedule.rules[0].address, rule_id=99, data=0))
        assert "rule.unknown-id" in checks(lint_schedule(analysis, schedule))

    def test_exact_duplicate_rule(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(schedule.rules[0])
        assert "rule.duplicate" in checks(lint_schedule(analysis, schedule))

    def test_pool_index_out_of_range(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        bad = len(schedule.pool) + 5
        schedule.rules.append(RewriteRule(
            address=schedule.rules[0].address,
            rule_id=RuleID.THREAD_SCHEDULE, data=bad))
        assert "rule.operand-range" in checks(
            lint_schedule(analysis, schedule))

    def test_missing_loop_finish(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules = [r for r in schedule.rules
                          if r.rule_id is not RuleID.PROF_LOOP_FINISH]
        assert "rule.prof-bracket" in checks(
            lint_schedule(analysis, schedule))

    def test_misplaced_loop_init(self):
        analysis = analyze_image(doall_image())
        schedule = generate_parallel_schedule(analysis, [0])
        moved = []
        for rule in schedule.rules:
            if rule.rule_id is RuleID.LOOP_INIT:
                # Shift LOOP_INIT onto another real instruction boundary.
                target = next(a for a in analysis.disassembly.instructions
                              if a != rule.address)
                rule = RewriteRule(address=target, rule_id=rule.rule_id,
                                   data=rule.data)
            moved.append(rule)
        schedule.rules = moved
        assert "rule.init-placement" in checks(
            lint_schedule(analysis, schedule))

    def test_checksum_mismatch(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.text_checksum ^= 0xFFFF
        assert "schedule.checksum" in checks(
            lint_schedule(analysis, schedule))

    def test_linter_never_raises_on_garbage(self):
        analysis = analyze_image(doall_image())
        schedule = generate_profile_schedule(analysis, stage=COVERAGE_STAGE)
        schedule.rules.append(RewriteRule(address=2**63, rule_id=7, data=-1))
        findings = lint_schedule(analysis, schedule)
        assert findings  # reported, not raised
