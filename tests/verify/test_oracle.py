"""Tier 3: the DOALL oracle — replay, guard classification, demotion.

The acceptance-critical case: a loop with a genuine loop-carried
dependence whose category is forcibly (mis)set to STATIC_DOALL must come
back CONFIRMED_UNSOUND, be demoted under ``demote=True``, and drive the
``repro verify`` exit code to 1.
"""

from repro.analysis import LoopCategory, analyze_image
from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label, LabelRef
from repro.isa.registers import R
from repro.verify import (
    Severity,
    VerifyReport,
    claimed_doall_loops,
    exit_code,
    run_doall_oracle,
)

from tests.analysis.conftest import assemble

RAX, RCX = Reg(R.rax), Reg(R.rcx)


def array_fill_image():
    def build(a):
        a.space("arr", 64)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


def recurrence_image():
    """a[i] = a[i-1]: a distance-1 flow dependence every iteration."""

    def build(a):
        a.space("arr", 64)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(1))
        a.label("loop")
        a.emit(O.MOV, RAX,
               Mem(index=R.rcx, scale=8, disp=LabelRef("arr", -8)))
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RAX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


def seeded_misclassification(category):
    """Analyse the recurrence and force the dependent loop's category."""
    image = recurrence_image()
    analysis = analyze_image(image)
    loop = analysis.loops[0]
    assert loop.category is LoopCategory.STATIC_DEPENDENCE
    loop.category = category
    return image, analysis, loop


class TestCleanClaims:
    def test_true_doall_replays_clean(self):
        image = array_fill_image()
        analysis = analyze_image(image)
        claimed = claimed_doall_loops(analysis)
        assert [r.loop_id for r in claimed] == [0]
        result = run_doall_oracle(image, analysis)
        stats = result.loops[0]
        assert stats.invocations == 1
        assert stats.iterations > 0
        assert result.confirmed_totals == {}
        assert result.guarded_totals == {}
        assert result.findings() == []
        assert result.demoted == []

    def test_no_claims_no_replay(self):
        image = recurrence_image()
        analysis = analyze_image(image)  # STATIC_DEPENDENCE: not claimed
        result = run_doall_oracle(image, analysis)
        assert result.loops == {}
        assert result.instructions == 0


class TestSeededMisclassification:
    def test_static_doall_claim_is_confirmed_unsound(self):
        image, analysis, loop = seeded_misclassification(
            LoopCategory.STATIC_DOALL)
        result = run_doall_oracle(image, analysis)
        assert result.confirmed_totals.get(loop.loop_id, 0) > 0
        assert loop.loop_id in result.unsound_loop_ids
        kinds = {c.kind for c in result.conflicts if c.guard is None}
        assert "W->R" in kinds  # the flow dependence a[i-1] -> a[i]
        findings = result.findings()
        assert any(f.severity is Severity.CONFIRMED_UNSOUND
                   for f in findings)

    def test_confirmed_unsound_drives_exit_code_1(self):
        image, analysis, _ = seeded_misclassification(
            LoopCategory.STATIC_DOALL)
        result = run_doall_oracle(image, analysis)
        report = VerifyReport(workload="seeded")
        report.findings.extend(result.findings())
        assert report.confirmed
        assert exit_code([report]) == 1
        clean = VerifyReport(workload="clean")
        assert exit_code([clean]) == 0
        assert exit_code([clean, report]) == 1

    def test_demote_downgrades_the_loop_in_place(self):
        image, analysis, loop = seeded_misclassification(
            LoopCategory.STATIC_DOALL)
        result = run_doall_oracle(image, analysis, demote=True)
        assert result.demoted == [loop.loop_id]
        assert loop.category is LoopCategory.STATIC_DEPENDENCE
        assert any("verification oracle" in r for r in loop.reasons)
        # A demoted loop no longer qualifies as a DOALL claim.
        assert claimed_doall_loops(analysis) == []

    def test_dynamic_claim_is_profile_gated_not_confirmed(self):
        # The same dependence under a DYNAMIC_DOALL claim is visible to
        # the dependence profiler (both accesses are analysed), so any
        # selection path demotes it before parallel execution: a WARNING,
        # not confirmed unsoundness.
        image, analysis, loop = seeded_misclassification(
            LoopCategory.DYNAMIC_DOALL)
        result = run_doall_oracle(image, analysis, demote=True)
        assert result.confirmed_totals == {}
        assert result.guarded_totals[loop.loop_id]["profile"] > 0
        assert result.demoted == []
        findings = result.findings()
        assert findings
        assert all(f.severity is Severity.WARNING for f in findings)


class TestReplayBounds:
    def test_iteration_bound_caps_the_shadow(self):
        image = array_fill_image()
        analysis = analyze_image(image)
        result = run_doall_oracle(image, analysis, max_iterations=8)
        assert 0 < result.loops[0].iterations <= 8

    def test_instruction_bound_caps_the_run(self):
        image = array_fill_image()
        analysis = analyze_image(image)
        result = run_doall_oracle(image, analysis, max_instructions=50)
        assert result.instructions <= 50


class TestSpeculatedCallWindows:
    def test_stm_guarded_rand_state_is_not_a_conflict(self):
        # rand() advances a hidden LCG word every call: a genuine
        # cross-iteration W->W on __rand_state.  The call site is an STM
        # site (TX_START/TX_FINISH at parallel runtime), so the oracle
        # must attribute those accesses to speculation, not the shadow.
        def build(a):
            randf = a.import_symbol("rand")
            rbx = Reg(R.rbx)
            a.space("arr", 16)
            a.label("_start")
            a.emit(O.MOV, rbx, Imm(0))
            a.label("loop")
            a.emit(O.CALL, randf)
            a.emit(O.MOV, Mem(index=R.rbx, scale=8, disp=Label("arr")), RAX)
            a.emit(O.INC, rbx)
            a.emit(O.CMP, rbx, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        image = assemble(build)
        analysis = analyze_image(image)
        loop = analysis.loops[0]
        assert loop.category is LoopCategory.DYNAMIC_DOALL
        assert loop.stm_call_sites
        result = run_doall_oracle(image, analysis)
        stats = result.loops[loop.loop_id]
        assert stats.speculated_accesses > 0
        assert result.confirmed_totals == {}
