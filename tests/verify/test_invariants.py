"""Tier 1: the IR invariant checker against clean and corrupted analyses."""

from repro.analysis import analyze_image
from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.verify import Severity, check_analysis, check_function

from tests.analysis.conftest import assemble

RAX, RCX = Reg(R.rax), Reg(R.rcx)


def array_fill_image():
    def build(a):
        a.space("arr", 64)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


def nested_image():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, Reg(R.rsi), Imm(0))
        a.label("outer")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("inner")
        a.emit(O.ADD, RAX, RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(4))
        a.emit(O.JL, Label("inner"))
        a.emit(O.INC, Reg(R.rsi))
        a.emit(O.CMP, Reg(R.rsi), Imm(3))
        a.emit(O.JL, Label("outer"))
        a.emit(O.RET)

    return assemble(build)


def checks(findings):
    return {f.check for f in findings}


class TestCleanAnalyses:
    def test_single_loop_is_invariant_clean(self):
        findings = check_analysis(analyze_image(array_fill_image()))
        assert findings == []

    def test_nested_loops_are_invariant_clean(self):
        findings = check_analysis(analyze_image(nested_image()))
        assert findings == []


class TestCorruptedCFG:
    def test_bogus_successor_reported(self):
        analysis = analyze_image(array_fill_image())
        fa = next(iter(analysis.functions.values()))
        block = fa.cfg.blocks[fa.cfg.entry]
        block.succs.append(0xDEAD)
        found = checks(check_function(fa))
        assert "cfg.edge-target" in found

    def test_asymmetric_edge_reported(self):
        analysis = analyze_image(array_fill_image())
        fa = next(iter(analysis.functions.values()))
        # Drop one pred entry: the succ edge now has no mirror.
        for block in fa.cfg.blocks.values():
            if block.preds:
                block.preds.remove(block.preds[0])
                break
        found = checks(check_function(fa))
        assert "cfg.pred-symmetry" in found

    def test_terminator_arity_reported(self):
        analysis = analyze_image(array_fill_image())
        fa = next(iter(analysis.functions.values()))
        # Give the RET block a successor: 0 allowed for indirect/ret/halt.
        for start, block in fa.cfg.blocks.items():
            if block.terminator.is_ret:
                block.succs.append(fa.cfg.entry)
                fa.cfg.blocks[fa.cfg.entry].preds.append(start)
                break
        found = checks(check_function(fa))
        assert "cfg.terminator-arity" in found


class TestCorruptedDominators:
    def test_wrong_idom_reported(self):
        analysis = analyze_image(nested_image())
        fa = next(iter(analysis.functions.values()))
        # Point some non-entry block's idom at itself's child: recompute
        # disagrees (or the chain cycles) either way.
        victim = next(b for b in fa.dom.idom if fa.dom.idom[b] is not None)
        fa.dom.idom[victim] = victim
        found = checks(check_function(fa))
        assert {"dom.idom-cycle", "dom.idom-mismatch"} & found


class TestCorruptedLoops:
    def test_unknown_body_block_reported(self):
        analysis = analyze_image(array_fill_image())
        fa = next(iter(analysis.functions.values()))
        fa.loops[0].body.add(0xBEEF)
        found = checks(check_function(fa))
        assert "loop.body-blocks" in found

    def test_missing_exit_edge_reported(self):
        analysis = analyze_image(array_fill_image())
        fa = next(iter(analysis.functions.values()))
        loop = fa.loops[0]
        loop.exit_edges = []
        found = checks(check_function(fa))
        assert "loop.exit-edges" in found

    def test_duplicate_loop_ids_reported(self):
        analysis = analyze_image(nested_image())
        first_id = analysis.loops[0].loop_id
        analysis.loops[1].loop.loop_id = first_id
        found = checks(check_analysis(analysis))
        assert "loops.duplicate-id" in found


class TestNeverRaises:
    def test_checker_bug_becomes_finding(self):
        analysis = analyze_image(array_fill_image())
        fa = next(iter(analysis.functions.values()))
        # A hostile artefact: blow away the dominator info entirely.
        fa.dom = None
        findings = check_analysis(analysis)
        assert "internal.exception" in checks(findings)
        assert all(f.severity in tuple(Severity) for f in findings)
