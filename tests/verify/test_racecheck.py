"""Tests for the static race detector (``repro racecheck``)."""

from types import SimpleNamespace

import pytest

from repro.analysis import LoopCategory, analyze_image
from repro.jcc import CompileOptions, compile_source
from repro.verify.findings import Finding, Severity, VerifyReport
from repro.verify.racecheck import (
    RaceVerdict,
    _bounds_checked_pairs,
    _constant_distance_proof,
    exit_code,
    racecheck_analysis,
    racecheck_workload,
)

ROW_SOURCE = """
double A[512];
double B[512];

void add_row(int i) {
    int j;
    for (j = 0; j < 8; j = j + 1) {
        A[i * 8 + j] = B[i * 8 + j] + 1.0;
    }
}

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        add_row(i);
    }
    print_int(0);
    return 0;
}
"""

CLASH_SOURCE = ROW_SOURCE.replace("A[i * 8 + j]", "A[j]", 1)


@pytest.fixture(scope="module")
def row_analysis():
    image = compile_source(ROW_SOURCE, CompileOptions(opt_level=2))
    return analyze_image(image)


class TestRacecheckAnalysis:
    def test_released_calls_prove_disjoint_with_chain(self, row_analysis):
        report = racecheck_analysis(row_analysis, mode="parallel",
                                    workload="row")
        assert report.ok
        assert report.loops_checked >= 1
        call_pairs = [p for p in report.pairs if p.kind == "call"]
        proven_calls = [p for p in call_pairs
                        if p.verdict is RaceVerdict.PROVEN_DISJOINT]
        assert proven_calls, "released call should report PROVEN_DISJOINT"
        for pair in proven_calls:
            assert pair.chain, "PROVEN_DISJOINT call with empty chain"

    def test_every_proven_pair_has_explanation(self, row_analysis):
        report = racecheck_analysis(row_analysis, mode="parallel")
        proven = report.by_verdict(RaceVerdict.PROVEN_DISJOINT)
        assert proven
        for pair in proven:
            assert pair.chain and all(step for step in pair.chain)

    def test_no_possible_race_on_static_doall(self, row_analysis):
        report = racecheck_analysis(row_analysis, mode="parallel")
        static_ids = {r.loop_id for r in row_analysis.loops
                      if r.category is LoopCategory.STATIC_DOALL}
        bad = [p for p in report.pairs
               if p.loop_id in static_ids
               and p.verdict is RaceVerdict.POSSIBLE_RACE]
        assert not bad
        assert not report.unsound_static_loops

    def test_to_dict_is_deterministic_and_sorted(self, row_analysis):
        first = racecheck_analysis(row_analysis, mode="parallel",
                                   workload="row").to_dict()
        second = racecheck_analysis(row_analysis, mode="parallel",
                                    workload="row").to_dict()
        assert first == second
        keys = [(p["function"], p["loop_id"], p["source"], p["sink"],
                 p["kind"]) for p in first["pairs"]]
        assert keys == sorted(keys)

    def test_tampered_static_claim_is_flagged_unsound(self):
        image = compile_source(CLASH_SOURCE, CompileOptions(opt_level=2))
        analysis = analyze_image(image)
        tampered = [r for r in analysis.loops
                    if r.internal_calls and not r.released_call_sites]
        assert tampered, "expected an outer loop with an unreleased call"
        for result in tampered:
            # Simulate a classifier bug: claim the loop proven-DOALL and
            # drop the STM window that actually guards the call.
            result.category = LoopCategory.STATIC_DOALL
            result.stm_call_sites = []
        ids = [r.loop_id for r in tampered]
        report = racecheck_analysis(analysis, mode="parallel",
                                    loop_ids=ids, workload="tampered")
        assert not report.ok
        assert sorted(report.unsound_static_loops) == sorted(ids)
        races = report.by_verdict(RaceVerdict.POSSIBLE_RACE)
        assert races
        assert exit_code([report]) == 1
        errors = [f for f in report.findings()
                  if f.severity is Severity.ERROR]
        assert errors

    def test_exit_code_contract(self, row_analysis):
        clean = racecheck_analysis(row_analysis, mode="parallel")
        assert exit_code([clean]) == 0
        assert exit_code([clean, clean]) == 0

    def test_vector_mode_runs_clean(self, row_analysis):
        # The suite's jcc output has no vector-legal loops (2x unrolling
        # produces non-unit steps); the report must still be well-formed.
        report = racecheck_analysis(row_analysis, mode="vector")
        assert report.ok
        assert exit_code([report]) == 0


class TestSuiteWorkload:
    def test_suite_workload_clean_with_chains(self):
        report = racecheck_workload("470.lbm", mode="parallel")
        assert report.ok
        assert report.loops_checked >= 1
        assert report.pairs
        assert not report.by_verdict(RaceVerdict.POSSIBLE_RACE)
        for pair in report.by_verdict(RaceVerdict.PROVEN_DISJOINT):
            assert pair.chain
        for pair in report.by_verdict(RaceVerdict.GUARDED):
            assert pair.guard


def _access(theta_coeff, const_offset, lanes=1):
    return SimpleNamespace(theta_coeff=theta_coeff,
                           const_offset=const_offset, lanes=lanes)


class TestConstantDistanceProof:
    def test_invariant_pair_is_not_a_proof(self):
        # theta_coeff == 0 on both sides: _pair_dependence defers this to
        # the invariant-group machinery; claiming a constant-distance
        # proof here would fabricate a test that never ran.
        write = _access(theta_coeff=0, const_offset=0)
        other = _access(theta_coeff=0, const_offset=64)
        assert _constant_distance_proof(write, other, 1, 64) is None

    def test_infeasible_strided_pair_yields_chain(self):
        # Stride 8, byte distance 1024 needs d = 128; only 4 iterations.
        write = _access(theta_coeff=8, const_offset=0)
        other = _access(theta_coeff=8, const_offset=1024)
        proof = _constant_distance_proof(write, other, 1, 4)
        assert proof and any("constant distance" in s for s in proof)

    def test_feasible_strided_pair_is_not_proven(self):
        write = _access(theta_coeff=8, const_offset=0)
        other = _access(theta_coeff=8, const_offset=8)
        assert _constant_distance_proof(write, other, 1, 4) is None


class TestBoundsCheckedPairs:
    def test_pair_split_across_plans_is_not_covered(self):
        a1, b1 = _access(8, 0), _access(8, 8)
        a2, b2 = _access(8, 16), _access(8, 24)
        plan = lambda w, o: SimpleNamespace(  # noqa: E731
            write_group=SimpleNamespace(accesses=[w]),
            other_group=SimpleNamespace(accesses=[o]))
        alias = SimpleNamespace(bounds_checks=[plan(a1, b1), plan(a2, b2)])
        covered = _bounds_checked_pairs(alias)
        assert (id(a1), id(b1)) in covered
        assert (id(b1), id(a1)) in covered
        assert (id(a2), id(b2)) in covered
        # Both sides appear in SOME plan, but no single plan compares
        # them — must not be reported as bounds-check guarded.
        assert (id(a1), id(b2)) not in covered
        assert (id(a1), id(a2)) not in covered


class TestFindingsIntegration:
    def test_findings_carry_anchors(self, row_analysis):
        report = racecheck_analysis(row_analysis, mode="parallel")
        findings = report.findings()
        assert findings
        for finding in findings:
            assert finding.tier == "racecheck"
            assert finding.loop_id >= 0
            assert finding.function.startswith("0x")

    def test_verify_report_sorts_findings(self):
        low = Finding(tier="racecheck", check="race.guarded",
                      severity=Severity.INFO, location="a", message="m",
                      function="0x400000", loop_id=1, address=0x10)
        high = Finding(tier="racecheck", check="race.guarded",
                       severity=Severity.INFO, location="b", message="m",
                       function="0x400000", loop_id=2, address=0x8)
        other_fn = Finding(tier="racecheck", check="race.guarded",
                           severity=Severity.INFO, location="c", message="m",
                           function="0x3fffff", loop_id=9, address=0x90)
        report = VerifyReport(workload="w",
                              findings=[high, low, other_fn])
        dumped = report.to_dict()["findings"]
        assert [(f["function"], f["loop_id"], f["address"])
                for f in dumped] == [
            ("0x3fffff", 9, 0x90),
            ("0x400000", 1, 0x10),
            ("0x400000", 2, 0x8),
        ]
