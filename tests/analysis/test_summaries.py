"""Tests for interprocedural function summaries."""

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.analysis.cfg import build_cfgs
from repro.analysis.disasm import disassemble
from repro.analysis.summaries import summarise_functions

from tests.analysis.conftest import assemble


def summarise(build):
    image = assemble(build)
    cfgs = build_cfgs(disassemble(image))
    return image, cfgs, summarise_functions(cfgs)


def entry_of(cfgs, image, position):
    return sorted(cfgs)[position]


class TestLocalFacts:
    def test_pure_function(self):
        def build(a):
            a.label("_start")
            a.emit(O.CALL, Label("pure"))
            a.emit(O.RET)
            a.label("pure")
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.ADD, Reg(R.rax), Reg(R.rdi))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        pure_entry = [e for e in cfgs if e != image.entry][0]
        summary = summaries[pure_entry]
        assert summary.is_pure_enough
        assert not summary.writes_memory

    def test_own_frame_writes_do_not_count(self):
        def build(a):
            a.label("_start")
            a.emit(O.SUB, Reg(R.rsp), Imm(16))
            a.emit(O.MOV, Mem(base=R.rsp, disp=0), Imm(1))  # spill
            a.emit(O.ADD, Reg(R.rsp), Imm(16))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert not summaries[image.entry].writes_memory

    def test_global_write_counts(self):
        def build(a):
            a.word("g", 0)
            a.label("_start")
            a.emit(O.MOV, Mem(disp=Label("g")), Imm(1))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert summaries[image.entry].writes_memory

    def test_syscall_flag(self):
        def build(a):
            a.label("_start")
            a.emit(O.SYSCALL)
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert summaries[image.entry].has_syscall


class TestTransitive:
    def test_effects_propagate_up_call_chains(self):
        def build(a):
            a.word("g", 0)
            a.label("_start")
            a.emit(O.CALL, Label("middle"))
            a.emit(O.RET)
            a.label("middle")
            a.emit(O.CALL, Label("leaf"))
            a.emit(O.RET)
            a.label("leaf")
            a.emit(O.MOV, Mem(disp=Label("g")), Imm(1))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert summaries[image.entry].writes_memory
        assert all(s.writes_memory for s in summaries.values())

    def test_external_calls_propagate(self):
        def build(a):
            powf = a.import_symbol("pow")
            a.label("_start")
            a.emit(O.CALL, Label("wrapper"))
            a.emit(O.RET)
            a.label("wrapper")
            a.emit(O.CALL, powf)
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert "pow" in summaries[image.entry].external_calls
        assert not summaries[image.entry].is_pure_enough

    def test_recursion_reaches_fixpoint(self):
        def build(a):
            a.label("_start")
            a.emit(O.CALL, Label("rec"))
            a.emit(O.RET)
            a.label("rec")
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JLE, Label("done"))
            a.emit(O.DEC, Reg(R.rdi))
            a.emit(O.CALL, Label("rec"))
            a.label("done")
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)  # must terminate
        rec_entry = [e for e in cfgs if e != image.entry][0]
        assert not summaries[rec_entry].writes_memory
        assert summaries[rec_entry].is_pure_enough


class TestAccessRegions:
    """Parameterised access regions on compiled jcc callees."""

    ROW_CALLEE = """
    double A[512];
    double B[512];

    void add_row(int i) {
        int j;
        for (j = 0; j < 8; j = j + 1) {
            A[i * 8 + j] = B[i * 8 + j] + 1.0;
        }
    }

    int main() {
        int i;
        for (i = 0; i < 64; i = i + 1) {
            add_row(i);
        }
        print_int(0);
        return 0;
    }
    """

    def _callee_summary(self, source, opt_level=2):
        from repro.jcc import CompileOptions, compile_source

        image = compile_source(source, CompileOptions(opt_level=opt_level))
        cfgs = build_cfgs(disassemble(image))
        summaries = summarise_functions(cfgs)
        exact = [s for s in summaries.values() if s.regions_exact]
        assert len(exact) == 1, "expected exactly one region-exact callee"
        return exact[0]

    def test_row_callee_regions_are_tight(self):
        summary = self._callee_summary(self.ROW_CALLEE)
        writes = summary.write_regions
        assert len(writes) == 1
        region = writes[0]
        # A[i*8 + j] with j in [0, 8): a 64-byte window at stride 64 per
        # unit of the argument register.  Branch-refined iterator ranges
        # must give exactly 8 doubles, not 9.
        assert region.scale == 64
        assert region.var is not None
        assert region.hi - region.lo == 64

    def test_row_callee_regions_tight_under_unrolling(self):
        # opt_level=3 unrolls the inner loop 2x (step-2 main + remainder);
        # the merged region hull must still be exactly 64 bytes wide.
        summary = self._callee_summary(self.ROW_CALLEE, opt_level=3)
        writes = summary.write_regions
        assert len(writes) == 1
        assert writes[0].hi - writes[0].lo == 64

    EXIT_STORE_CALLEE = """
    double A[576];

    void fill(int n) {
        int j;
        for (j = 0; j < 8; j = j + 1) {
            A[n * 9 + j] = 1.0;
        }
        A[n * 9 + j] = 2.0;
    }

    int main() {
        int i;
        for (i = 0; i < 64; i = i + 1) {
            fill(i);
        }
        print_int(0);
        return 0;
    }
    """

    def test_post_loop_store_at_exit_value_is_inside_region(self):
        # After the loop, j holds the failing-test value 8: the store
        # A[n*9 + 8] must be covered by the summarised write window, so
        # the hull is 72 bytes, not the in-body 64.  (The header-phi
        # range includes the exit evaluation for post-loop uses.)
        summary = self._callee_summary(self.EXIT_STORE_CALLEE)
        writes = summary.write_regions
        assert len(writes) == 1
        region = writes[0]
        assert region.scale == 72
        assert region.hi - region.lo == 72, \
            f"write window [{region.lo}, {region.hi}) misses the exit store"

    def test_read_and_write_regions_separate(self):
        summary = self._callee_summary(self.ROW_CALLEE)
        reads = [r for r in summary.regions if not r.is_write]
        assert reads, "expected read regions for B"
        strided = [r for r in reads if r.var is not None]
        assert strided and all(r.scale == 64 for r in strided)
        # Read and write windows must not be merged together.
        assert all(not r.is_write for r in reads)
        assert summary.writes_memory
