"""Tests for interprocedural function summaries."""

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.analysis.cfg import build_cfgs
from repro.analysis.disasm import disassemble
from repro.analysis.summaries import summarise_functions

from tests.analysis.conftest import assemble


def summarise(build):
    image = assemble(build)
    cfgs = build_cfgs(disassemble(image))
    return image, cfgs, summarise_functions(cfgs)


def entry_of(cfgs, image, position):
    return sorted(cfgs)[position]


class TestLocalFacts:
    def test_pure_function(self):
        def build(a):
            a.label("_start")
            a.emit(O.CALL, Label("pure"))
            a.emit(O.RET)
            a.label("pure")
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.ADD, Reg(R.rax), Reg(R.rdi))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        pure_entry = [e for e in cfgs if e != image.entry][0]
        summary = summaries[pure_entry]
        assert summary.is_pure_enough
        assert not summary.writes_memory

    def test_own_frame_writes_do_not_count(self):
        def build(a):
            a.label("_start")
            a.emit(O.SUB, Reg(R.rsp), Imm(16))
            a.emit(O.MOV, Mem(base=R.rsp, disp=0), Imm(1))  # spill
            a.emit(O.ADD, Reg(R.rsp), Imm(16))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert not summaries[image.entry].writes_memory

    def test_global_write_counts(self):
        def build(a):
            a.word("g", 0)
            a.label("_start")
            a.emit(O.MOV, Mem(disp=Label("g")), Imm(1))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert summaries[image.entry].writes_memory

    def test_syscall_flag(self):
        def build(a):
            a.label("_start")
            a.emit(O.SYSCALL)
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert summaries[image.entry].has_syscall


class TestTransitive:
    def test_effects_propagate_up_call_chains(self):
        def build(a):
            a.word("g", 0)
            a.label("_start")
            a.emit(O.CALL, Label("middle"))
            a.emit(O.RET)
            a.label("middle")
            a.emit(O.CALL, Label("leaf"))
            a.emit(O.RET)
            a.label("leaf")
            a.emit(O.MOV, Mem(disp=Label("g")), Imm(1))
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert summaries[image.entry].writes_memory
        assert all(s.writes_memory for s in summaries.values())

    def test_external_calls_propagate(self):
        def build(a):
            powf = a.import_symbol("pow")
            a.label("_start")
            a.emit(O.CALL, Label("wrapper"))
            a.emit(O.RET)
            a.label("wrapper")
            a.emit(O.CALL, powf)
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)
        assert "pow" in summaries[image.entry].external_calls
        assert not summaries[image.entry].is_pure_enough

    def test_recursion_reaches_fixpoint(self):
        def build(a):
            a.label("_start")
            a.emit(O.CALL, Label("rec"))
            a.emit(O.RET)
            a.label("rec")
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JLE, Label("done"))
            a.emit(O.DEC, Reg(R.rdi))
            a.emit(O.CALL, Label("rec"))
            a.label("done")
            a.emit(O.RET)

        image, cfgs, summaries = summarise(build)  # must terminate
        rec_entry = [e for e in cfgs if e != image.entry][0]
        assert not summaries[rec_entry].writes_memory
        assert summaries[rec_entry].is_pure_enough
