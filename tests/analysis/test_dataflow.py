"""Tests for block-level liveness and reaching definitions."""

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.analysis.cfg import build_cfgs
from repro.analysis.dataflow import compute_liveness, compute_reaching
from repro.analysis.disasm import disassemble
from repro.analysis.dominators import compute_dominators
from repro.analysis.ssa import build_ssa
from repro.analysis.stack import track_stack

from tests.analysis.conftest import assemble


def make_cfg(build):
    image = assemble(build)
    cfgs = build_cfgs(disassemble(image))
    return cfgs[image.entry]


class TestLiveness:
    def test_straight_line(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.MOV, Reg(R.rbx), Reg(R.rax))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_liveness(cfg)
        # rax is defined before use: not live into the entry block.
        assert not info.is_live_in(cfg.entry, R.rax)

    def test_branch_input_is_live_in(self):
        def build(a):
            a.label("_start")
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JL, Label("neg"))
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.RET)
            a.label("neg")
            a.emit(O.MOV, Reg(R.rax), Imm(-1))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_liveness(cfg)
        assert info.is_live_in(cfg.entry, R.rdi)

    def test_loop_carried_value_live_around_backedge(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(0))
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(9))
            a.emit(O.JLE, Label("loop"))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_liveness(cfg)
        loop_block = [s for s, b in cfg.blocks.items()
                      if b.terminator.opcode is O.JLE][0]
        # The accumulator and iterator are live around the back edge.
        assert info.is_live_in(loop_block, R.rax)
        assert info.is_live_in(loop_block, R.rcx)
        assert info.is_live_out(loop_block, R.rcx)

    def test_stack_slot_liveness(self):
        def build(a):
            a.label("_start")
            a.emit(O.SUB, Reg(R.rsp), Imm(16))
            a.emit(O.MOV, Mem(base=R.rsp, disp=0), Imm(9))
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JL, Label("out"))
            a.emit(O.MOV, Reg(R.rax), Mem(base=R.rsp, disp=0))
            a.label("out")
            a.emit(O.ADD, Reg(R.rsp), Imm(16))
            a.emit(O.RET)

        cfg = make_cfg(build)
        deltas = track_stack(cfg)
        info = compute_liveness(cfg, deltas)
        read_block = [s for s, b in cfg.blocks.items()
                      if any(m.base == R.rsp for i in b.instructions
                             for m in i.mem_reads())][0]
        assert info.is_live_in(read_block, ("stack", -16))


class TestReaching:
    def test_both_branch_defs_reach_join(self):
        def build(a):
            a.label("_start")
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JL, Label("neg"))
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.JMP, Label("join"))
            a.label("neg")
            a.emit(O.MOV, Reg(R.rax), Imm(-1))
            a.label("join")
            a.emit(O.ADD, Reg(R.rax), Imm(10))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_reaching(cfg)
        join = max(cfg.blocks)
        sites = info.definitions_of(join, R.rax)
        assert len(sites) == 2  # one per branch

    def test_redefinition_kills(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.MOV, Reg(R.rax), Imm(2))
            a.emit(O.CMP, Reg(R.rax), Imm(0))
            a.emit(O.JL, Label("next"))
            a.label("next")
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_reaching(cfg)
        next_block = max(cfg.blocks)
        sites = info.definitions_of(next_block, R.rax)
        # Only the *last* def of the entry block reaches.
        assert len(sites) == 1
        (var, block, index), = sites
        assert index == 1

    def test_agreement_with_ssa_phi_placement(self):
        """Blocks where >1 def of a var reaches must host an SSA phi."""

        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(0))
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(9))
            a.emit(O.JLE, Label("loop"))
            a.emit(O.RET)

        cfg = make_cfg(build)
        dom = compute_dominators(cfg)
        deltas = track_stack(cfg)
        ssa = build_ssa(cfg, dom, deltas)
        reaching = compute_reaching(cfg, deltas)
        loop_block = [s for s, b in cfg.blocks.items()
                      if b.terminator.opcode is O.JLE][0]
        assert len(reaching.definitions_of(loop_block, R.rcx)) == 2
        assert ssa.phi_for(loop_block, R.rcx) is not None


class TestMultiLatchLoops:
    """A loop body with two back edges (continue from two arms)."""

    @staticmethod
    def build(a):
        # for (rcx = 0; rcx <= 9; ) { if (rcx odd) rax += rcx; rcx++ }
        # with two separate latch blocks, each holding its own back edge.
        a.label("_start")
        a.emit(O.MOV, Reg(R.rax), Imm(0))
        a.emit(O.MOV, Reg(R.rcx), Imm(0))
        a.label("head")
        a.emit(O.MOV, Reg(R.rdx), Reg(R.rcx))
        a.emit(O.AND, Reg(R.rdx), Imm(1))
        a.emit(O.CMP, Reg(R.rdx), Imm(0))
        a.emit(O.JE, Label("even"))
        a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))   # odd arm / latch 1
        a.emit(O.INC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(9))
        a.emit(O.JLE, Label("head"))
        a.emit(O.RET)
        a.label("even")                          # even arm / latch 2
        a.emit(O.INC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(9))
        a.emit(O.JLE, Label("head"))
        a.emit(O.RET)

    def _cfg(self):
        return make_cfg(self.build)

    def test_liveness_flows_through_both_latches(self):
        cfg = self._cfg()
        info = compute_liveness(cfg)
        latches = [s for s, b in cfg.blocks.items()
                   if b.terminator.opcode is O.JLE]
        assert len(latches) == 2
        head = min(b for b in cfg.blocks if b != cfg.entry)
        for latch in latches:
            # The iterator survives each back edge; the accumulator is
            # live through both latches because the odd arm reads it.
            assert info.is_live_in(latch, R.rcx)
            assert info.is_live_out(latch, R.rcx)
            assert info.is_live_out(latch, R.rax)
        assert info.is_live_in(head, R.rax)
        assert info.is_live_in(head, R.rcx)

    def test_reaching_defs_from_every_latch(self):
        cfg = self._cfg()
        info = compute_reaching(cfg)
        head = min(b for b in cfg.blocks if b != cfg.entry)
        sites = info.definitions_of(head, R.rcx)
        # init + one INC per latch: three distinct reaching definitions.
        assert len(sites) == 3
        assert len({block for _, block, _ in sites}) == 3

    def test_ssa_phi_merges_all_latches(self):
        cfg = self._cfg()
        dom = compute_dominators(cfg)
        deltas = track_stack(cfg)
        ssa = build_ssa(cfg, dom, deltas)
        head = min(b for b in cfg.blocks if b != cfg.entry)
        phi = ssa.phi_for(head, R.rcx)
        assert phi is not None
        assert len(phi.sources) == 3  # entry + two latch predecessors


class TestUnreachableBlocks:
    """Code after an unconditional jump that nothing targets."""

    @staticmethod
    def build(a):
        a.label("_start")
        a.emit(O.MOV, Reg(R.rax), Imm(1))
        a.emit(O.JMP, Label("tail"))
        a.label("dead")                      # never targeted
        a.emit(O.MOV, Reg(R.rbx), Reg(R.rsi))
        a.emit(O.MOV, Reg(R.rax), Imm(99))
        a.label("tail")
        a.emit(O.MOV, Reg(R.rbx), Reg(R.rax))
        a.emit(O.RET)

    def _cfg(self):
        return make_cfg(self.build)

    def test_dead_defs_do_not_reach(self):
        cfg = self._cfg()
        info = compute_reaching(cfg)
        tail = max(cfg.blocks)
        sites = info.definitions_of(tail, R.rax)
        # Only the entry-block def reaches; the dead block's MOV rax, 99
        # must not leak into the live CFG.
        assert len(sites) == 1
        (_, block, _), = sites
        assert block == cfg.entry

    def test_dead_uses_do_not_pollute_liveness(self):
        cfg = self._cfg()
        info = compute_liveness(cfg)
        # rsi is only read in the unreachable block: it must not become
        # live into the entry block through any dataflow path.
        assert not info.is_live_in(cfg.entry, R.rsi)

    def test_fixpoints_terminate_with_dead_code(self):
        cfg = self._cfg()
        # Smoke: both analyses converge and answer queries for every block
        # that the CFG kept, reachable or not.
        live = compute_liveness(cfg)
        reach = compute_reaching(cfg)
        for start in cfg.blocks:
            live.is_live_in(start, R.rax)
            reach.definitions_of(start, R.rax)
