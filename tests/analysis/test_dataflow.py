"""Tests for block-level liveness and reaching definitions."""

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.analysis.cfg import build_cfgs
from repro.analysis.dataflow import compute_liveness, compute_reaching
from repro.analysis.disasm import disassemble
from repro.analysis.dominators import compute_dominators
from repro.analysis.ssa import build_ssa
from repro.analysis.stack import track_stack

from tests.analysis.conftest import assemble


def make_cfg(build):
    image = assemble(build)
    cfgs = build_cfgs(disassemble(image))
    return cfgs[image.entry]


class TestLiveness:
    def test_straight_line(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.MOV, Reg(R.rbx), Reg(R.rax))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_liveness(cfg)
        # rax is defined before use: not live into the entry block.
        assert not info.is_live_in(cfg.entry, R.rax)

    def test_branch_input_is_live_in(self):
        def build(a):
            a.label("_start")
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JL, Label("neg"))
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.RET)
            a.label("neg")
            a.emit(O.MOV, Reg(R.rax), Imm(-1))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_liveness(cfg)
        assert info.is_live_in(cfg.entry, R.rdi)

    def test_loop_carried_value_live_around_backedge(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(0))
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(9))
            a.emit(O.JLE, Label("loop"))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_liveness(cfg)
        loop_block = [s for s, b in cfg.blocks.items()
                      if b.terminator.opcode is O.JLE][0]
        # The accumulator and iterator are live around the back edge.
        assert info.is_live_in(loop_block, R.rax)
        assert info.is_live_in(loop_block, R.rcx)
        assert info.is_live_out(loop_block, R.rcx)

    def test_stack_slot_liveness(self):
        def build(a):
            a.label("_start")
            a.emit(O.SUB, Reg(R.rsp), Imm(16))
            a.emit(O.MOV, Mem(base=R.rsp, disp=0), Imm(9))
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JL, Label("out"))
            a.emit(O.MOV, Reg(R.rax), Mem(base=R.rsp, disp=0))
            a.label("out")
            a.emit(O.ADD, Reg(R.rsp), Imm(16))
            a.emit(O.RET)

        cfg = make_cfg(build)
        deltas = track_stack(cfg)
        info = compute_liveness(cfg, deltas)
        read_block = [s for s, b in cfg.blocks.items()
                      if any(m.base == R.rsp for i in b.instructions
                             for m in i.mem_reads())][0]
        assert info.is_live_in(read_block, ("stack", -16))


class TestReaching:
    def test_both_branch_defs_reach_join(self):
        def build(a):
            a.label("_start")
            a.emit(O.CMP, Reg(R.rdi), Imm(0))
            a.emit(O.JL, Label("neg"))
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.JMP, Label("join"))
            a.label("neg")
            a.emit(O.MOV, Reg(R.rax), Imm(-1))
            a.label("join")
            a.emit(O.ADD, Reg(R.rax), Imm(10))
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_reaching(cfg)
        join = max(cfg.blocks)
        sites = info.definitions_of(join, R.rax)
        assert len(sites) == 2  # one per branch

    def test_redefinition_kills(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(1))
            a.emit(O.MOV, Reg(R.rax), Imm(2))
            a.emit(O.CMP, Reg(R.rax), Imm(0))
            a.emit(O.JL, Label("next"))
            a.label("next")
            a.emit(O.RET)

        cfg = make_cfg(build)
        info = compute_reaching(cfg)
        next_block = max(cfg.blocks)
        sites = info.definitions_of(next_block, R.rax)
        # Only the *last* def of the entry block reaches.
        assert len(sites) == 1
        (var, block, index), = sites
        assert index == 1

    def test_agreement_with_ssa_phi_placement(self):
        """Blocks where >1 def of a var reaches must host an SSA phi."""

        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rax), Imm(0))
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(9))
            a.emit(O.JLE, Label("loop"))
            a.emit(O.RET)

        cfg = make_cfg(build)
        dom = compute_dominators(cfg)
        deltas = track_stack(cfg)
        ssa = build_ssa(cfg, dom, deltas)
        reaching = compute_reaching(cfg, deltas)
        loop_block = [s for s, b in cfg.blocks.items()
                      if b.terminator.opcode is O.JLE][0]
        assert len(reaching.definitions_of(loop_block, R.rcx)) == 2
        assert ssa.phi_for(loop_block, R.rcx) is not None
