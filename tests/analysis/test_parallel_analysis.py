"""Parallel per-function analysis must be indistinguishable from serial."""

import pytest

from repro.analysis import analyze_image
from repro.workloads import compile_workload


def _fingerprint(analysis):
    """Everything downstream consumers read, in loop-id order."""
    loops = []
    for result in analysis.loops:
        iterator = None
        if result.induction is not None \
                and result.induction.iterator is not None:
            iterator = result.induction.iterator.static_trip_count
        loops.append((
            result.loop_id,
            result.loop.header,
            result.loop.function_entry,
            tuple(sorted(result.loop.body)),
            result.loop.parent.header if result.loop.parent else None,
            result.category,
            tuple(result.reasons),
            result.is_parallelisable,
            result.static_instruction_count,
            iterator,
            len(result.alias.bounds_checks) if result.alias else None,
        ))
    functions = {
        entry: (sorted(fa.cfg.blocks), fa.ssa is not None,
                sorted(loop.header for loop in fa.loops))
        for entry, fa in analysis.functions.items()
    }
    return loops, functions, analysis.category_histogram()


@pytest.mark.parametrize("name", ["470.lbm", "433.milc", "403.gcc"])
def test_parallel_matches_serial(name):
    image = compile_workload(name)
    serial = analyze_image(image)
    parallel = analyze_image(image, jobs=2)
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_loop_ids_stay_stable_and_dense():
    image = compile_workload("464.h264ref")
    analysis = analyze_image(image, jobs=2)
    assert [r.loop_id for r in analysis.loops] \
        == list(range(len(analysis.loops)))
    headers = [r.loop.header for r in analysis.loops]
    assert headers == sorted(headers)
    # Each result's loop object carries its own id (the merge renumbers
    # the worker copies, not the originals).
    assert all(r.loop.loop_id == r.loop_id for r in analysis.loops)


def test_jobs_one_and_none_are_serial():
    image = compile_workload("470.lbm")
    assert _fingerprint(analyze_image(image, jobs=1)) \
        == _fingerprint(analyze_image(image, jobs=None)) \
        == _fingerprint(analyze_image(image))


def test_parallel_analysis_feeds_schedule_generation():
    """The worker-copied artefacts must stay self-consistent: schedule
    generation walks functions, loops, SSA and alias plans together."""
    from repro.rewrite import generate_parallel_schedule

    image = compile_workload("462.libquantum")
    serial = analyze_image(image)
    parallel = analyze_image(image, jobs=2)
    selected_serial = [r.loop_id for r in serial.loops
                       if r.is_parallelisable]
    selected_parallel = [r.loop_id for r in parallel.loops
                         if r.is_parallelisable]
    assert selected_parallel == selected_serial
    schedule_serial = generate_parallel_schedule(serial, selected_serial)
    schedule_parallel = generate_parallel_schedule(parallel,
                                                   selected_parallel)
    assert schedule_parallel.serialize() == schedule_serial.serialize()
