"""End-to-end static classification tests (paper section II-D categories)."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label, LabelRef
from repro.isa.registers import R
from repro.analysis import LoopCategory, VariableClass, analyze_image

from tests.analysis.conftest import assemble

RAX, RCX, RDX, RSI, RDI = Reg(R.rax), Reg(R.rcx), Reg(R.rdx), Reg(R.rsi), Reg(R.rdi)
R8, R9, R10 = Reg(R.r8), Reg(R.r9), Reg(R.r10)
XMM0, XMM1 = Reg(R.xmm0), Reg(R.xmm1)


def single_loop(image):
    analysis = analyze_image(image)
    assert len(analysis.loops) == 1
    return analysis, analysis.loops[0]


def array_fill_image():
    """for (i=0; i<64; i++) a[i] = i;  — the canonical static DOALL."""

    def build(a):
        a.space("arr", 64)
        a.label("_start")
        a.emit(O.MOV, RCX, Imm(0))
        a.label("loop")
        a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RCX)
        a.emit(O.INC, RCX)
        a.emit(O.CMP, RCX, Imm(64))
        a.emit(O.JL, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


class TestStaticDoall:
    def test_array_fill_is_type_a(self):
        analysis, loop = single_loop(array_fill_image())
        assert loop.category is LoopCategory.STATIC_DOALL
        assert loop.is_parallelisable
        assert loop.induction.iterator.static_trip_count == 64

    def test_variable_classes(self):
        _, loop = single_loop(array_fill_image())
        assert loop.variables[R.rcx].vclass is VariableClass.INDUCTION
        assert loop.variables[R.rcx].step == 1

    def test_two_distinct_static_arrays(self):
        """b[i] = a[i] with both bases static constants: no check needed."""

        def build(a):
            a.space("a", 64)
            a.space("b", 64)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Mem(index=R.rcx, scale=8, disp=Label("a")))
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("b")), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(64))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        # Same symbolic base structure (empty) but offsets never collide:
        # distances are all >= 64 words with a 64-iteration trip count.
        assert loop.category is LoopCategory.STATIC_DOALL

    def test_register_reduction(self):
        """sum += a[i] with sum in a register: reduction, still type A."""

        def build(a):
            a.word("arr", *range(32))
            a.label("_start")
            a.emit(O.MOV, RAX, Imm(0))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.ADD, RAX, Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(32))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DOALL
        assert loop.variables[R.rax].vclass is VariableClass.REDUCTION

    def test_float_reduction(self):
        def build(a):
            a.double("arr", *[float(i) for i in range(16)])
            a.label("_start")
            a.emit(O.XORPD, XMM0, XMM0)
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.ADDSD, XMM0, Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DOALL
        info = loop.variables[R.xmm0]
        assert info.vclass is VariableClass.REDUCTION
        assert info.is_float


class TestStaticDependence:
    def test_recurrence_is_type_b(self):
        """a[i] = a[i-1]: distance-1 flow dependence."""

        def build(a):
            a.space("arr", 64)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(1))
            a.label("loop")
            a.emit(O.MOV, RAX,
                   Mem(index=R.rcx, scale=8, disp=LabelRef("arr", -8)))
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(64))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DEPENDENCE
        assert any(d.distance in (1, -1) for d in loop.alias.dependences)

    def test_non_reduction_carried_register(self):
        """prev = cur pattern: loop-carried register that is no reduction."""

        def build(a):
            a.word("arr", *range(32))
            a.space("out", 32)
            a.label("_start")
            a.emit(O.MOV, RDX, Imm(0))   # prev
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("out")), RDX)
            a.emit(O.MOV, RDX, RAX)      # carried to next iteration
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(32))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DEPENDENCE


class TestDynamicCandidates:
    def test_pointer_bases_need_bounds_check(self):
        """Bases loaded before the loop: distinctness unprovable -> check."""

        def build(a):
            a.word("pa", 0x20000000)
            a.word("pb", 0x20010000)
            a.label("_start")
            a.emit(O.MOV, R8, Mem(disp=Label("pa")))
            a.emit(O.MOV, R9, Mem(disp=Label("pb")))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Mem(base=R.r9, index=R.rcx, scale=8))
            a.emit(O.MOV, Mem(base=R.r8, index=R.rcx, scale=8), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(64))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.DYNAMIC_DOALL
        assert len(loop.alias.bounds_checks) == 1
        assert loop.is_parallelisable

    def test_library_call_needs_stm(self):
        """The iterator must live in a callee-saved register (rbx) to
        survive the call, exactly as a real compiler would allocate it."""

        def build(a):
            powf = a.import_symbol("pow")
            a.double("arr", *[1.0] * 16)
            rbx = Reg(R.rbx)
            a.label("_start")
            a.emit(O.MOV, rbx, Imm(0))
            a.label("loop")
            a.emit(O.MOVSD, XMM0, Mem(index=R.rbx, scale=8, disp=Label("arr")))
            a.emit(O.MOVSD, XMM1, XMM0)
            a.emit(O.CALL, powf)
            a.emit(O.MOVSD, Mem(index=R.rbx, scale=8, disp=Label("arr")), XMM0)
            a.emit(O.INC, rbx)
            a.emit(O.CMP, rbx, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.DYNAMIC_DOALL
        assert loop.stm_call_sites
        assert loop.is_parallelisable

    def test_caller_saved_iterator_killed_by_call(self):
        """With the iterator in rcx (caller-saved) the call clobbers the
        induction chain: the loop must be rejected, not mis-analysed."""

        def build(a):
            powf = a.import_symbol("pow")
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.CALL, powf)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE

    def test_profile_resolves_c_vs_d(self):
        _, loop = single_loop(array_fill_image())
        # Simulate the dynamic candidate path on a fresh result object.
        loop.category = LoopCategory.DYNAMIC_DOALL
        loop.apply_dependence_profile(True)
        assert loop.category is LoopCategory.DYNAMIC_DEPENDENCE
        loop2 = single_loop(array_fill_image())[1]
        loop2.category = LoopCategory.DYNAMIC_DOALL
        loop2.apply_dependence_profile(False)
        assert loop2.category is LoopCategory.DYNAMIC_DOALL


class TestIncompatible:
    def test_syscall_loop(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RDI, RCX)
            a.emit(O.MOV, RAX, Imm(1))
            a.emit(O.SYSCALL)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(4))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE

    def test_io_library_call_loop(self):
        def build(a):
            pr = a.import_symbol("print_int")
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RDI, RCX)
            a.emit(O.CALL, pr)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(4))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE

    def test_geometric_iterator(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(1))
            a.label("loop")
            a.emit(O.IMUL, RCX, Imm(2))
            a.emit(O.CMP, RCX, Imm(1024))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE
        assert any("induction" in r for r in loop.reasons)


class TestAnalyzerFacade:
    def test_histogram_and_ids(self):
        analysis, _ = single_loop(array_fill_image())
        histogram = analysis.category_histogram()
        assert histogram[LoopCategory.STATIC_DOALL] == 1
        assert analysis.loops[0].loop_id == 0

    def test_readonly_stack_slot_detected(self):
        """A loop reading a spilled value from the stack each iteration."""

        def build(a):
            a.space("arr", 32)
            a.label("_start")
            a.emit(O.SUB, Reg(R.rsp), Imm(16))
            a.emit(O.MOV, Mem(base=R.rsp, disp=0), Imm(5))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Mem(base=R.rsp, disp=0))
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RAX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(32))
            a.emit(O.JL, Label("loop"))
            a.emit(O.ADD, Reg(R.rsp), Imm(16))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DOALL
        assert len(loop.readonly_slot_readers) == 1
        (slot, readers), = loop.readonly_slot_readers.items()
        assert len(readers) == 1


class TestReservedRegisters:
    def test_loop_using_r15_rejected(self):
        """Application code touching the Janus-reserved registers inside a
        candidate loop must be refused, not silently corrupted."""

        def build(a):
            arr = a.space("arr", 32)
            a.label("_start")
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.emit(O.MOV, Reg(R.r15), Imm(7))
            a.label("loop")
            a.emit(O.MOV, RAX, Reg(R.r15))
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), RAX)
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(32))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE
        assert any("reserved" in reason for reason in loop.reasons)

    def test_r15_outside_loop_is_fine(self):
        def build(a):
            arr = a.space("arr", 32)
            a.label("_start")
            a.emit(O.MOV, Reg(R.r15), Imm(7))   # before the loop: ok
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), Reg(R.rcx))
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(32))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        _, loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DOALL
