"""Unit + differential tests for the symbolic dependence engine.

The hypothesis differential is the soundness anchor: for random affine
access pairs, whenever brute-force address-set intersection finds a
cross-iteration overlap, the engine must NOT report independence.
"""

from types import SimpleNamespace

from hypothesis import given, settings, strategies as st

from repro.analysis.depend import (
    DependContext,
    RegionInterval,
    Verdict,
    coefficient_verdict,
    loop_variant,
    make_context,
    pair_verdict,
    regions_disjoint,
)
from repro.analysis.expr import Poly
from repro.analysis.vrange import Interval

THETA = ("phi", 1, 3)


def make_ctx(init, step, trips, ranges=None, loop=None):
    last = init + step * (trips - 1)
    return DependContext(
        theta=THETA, step=step,
        theta_range=Interval(min(init, last), max(init, last)),
        max_distance=trips - 1, ranges=ranges, loop=loop)


def brute_force_overlap(ca, cb, delta, wa, wb, init, step, trips):
    """True iff some delta value lets the byte ranges of iterations
    i != j intersect: A(i) = ca*theta_i, B(j) = cb*theta_j - delta."""
    thetas = [init + step * i for i in range(trips)]
    for d in range(delta[0], delta[1] + 1):
        for i, ti in enumerate(thetas):
            a_bytes = range(ca * ti, ca * ti + wa)
            for j, tj in enumerate(thetas):
                if i == j:
                    continue
                b_lo = cb * tj - d
                if a_bytes.start < b_lo + wb and b_lo < a_bytes.stop:
                    return True
    return False


coeffs = st.integers(min_value=-4, max_value=4)
widths = st.sampled_from([8, 16, 32])


@settings(max_examples=300, deadline=None)
@given(ca=coeffs, cb=coeffs,
       delta_lo=st.integers(min_value=-80, max_value=80),
       delta_span=st.integers(min_value=0, max_value=24),
       wa=widths, wb=widths,
       init=st.integers(min_value=-8, max_value=8),
       step=st.sampled_from([-3, -2, -1, 1, 2, 3]),
       trips=st.integers(min_value=1, max_value=10))
def test_differential_never_unsound(ca, cb, delta_lo, delta_span, wa, wb,
                                    init, step, trips):
    ctx = make_ctx(init, step, trips)
    delta = Interval(delta_lo, delta_lo + delta_span)
    verdict = coefficient_verdict(ctx, ca, cb, delta, wa, wb)
    if verdict.independent:
        assert not brute_force_overlap(
            ca, cb, (delta_lo, delta_lo + delta_span), wa, wb,
            init, step, trips), (
            f"engine claimed independent but brute force overlaps: "
            f"{verdict}")
        assert verdict.chain, "independence must carry an explanation"


@settings(max_examples=150, deadline=None)
@given(ca=coeffs,
       delta=st.integers(min_value=-120, max_value=120),
       wa=widths, wb=widths,
       init=st.integers(min_value=-4, max_value=4),
       step=st.sampled_from([-2, -1, 1, 2]),
       trips=st.integers(min_value=1, max_value=12))
def test_differential_equal_coeff_exact(ca, delta, wa, wb, init, step,
                                        trips):
    """For equal coefficients and a constant delta the test is exact:
    the verdict must match brute force in BOTH directions."""
    ctx = make_ctx(init, step, trips)
    verdict = coefficient_verdict(ctx, ca, ca, Interval.const(delta),
                                  wa, wb)
    overlap = brute_force_overlap(ca, ca, (delta, delta), wa, wb,
                                  init, step, trips)
    assert verdict.independent == (not overlap)


def test_gcd_discharge():
    ctx = make_ctx(init=0, step=2, trips=100)
    # stride 16, bases 8 bytes apart: never on the same lattice point.
    verdict = coefficient_verdict(ctx, 8, 8, Interval.const(8), 8, 8)
    assert verdict.independent and verdict.test == "gcd"
    assert any("GCD" in s for s in verdict.chain)


def test_distance_discharge_outside_iteration_space():
    # Byte distance 6400 at stride 16 needs d=400, space has only 399.
    ctx = make_ctx(init=0, step=2, trips=400)
    verdict = coefficient_verdict(ctx, 8, 8, Interval.const(6400), 8, 8)
    assert verdict.independent and verdict.test == "distance"


def test_distance_dependence_inside_iteration_space():
    ctx = make_ctx(init=0, step=2, trips=401)
    verdict = coefficient_verdict(ctx, 8, 8, Interval.const(6400), 8, 8)
    assert not verdict.independent


def test_banerjee_discharge_differing_coefficients():
    # A reads 8*theta, B writes 16*theta + 16384; theta in [0, 62]:
    # B's minimum (16384) is far above A's maximum (496 + 7).
    ctx = make_ctx(init=0, step=2, trips=32)
    verdict = coefficient_verdict(ctx, 8, 16, Interval.const(-16384), 8, 8)
    assert verdict.independent and verdict.test == "banerjee"


def test_banerjee_respects_unbounded_range():
    ctx = DependContext(theta=THETA, step=1, theta_range=Interval.top(),
                        max_distance=None)
    verdict = coefficient_verdict(ctx, 8, 16, Interval.const(-16384), 8, 8)
    assert not verdict.independent


def test_invariant_addresses_separated_and_overlapping():
    ctx = make_ctx(init=0, step=1, trips=10)
    apart = coefficient_verdict(ctx, 0, 0, Interval.const(64), 8, 8)
    assert apart.independent and apart.test == "separation"
    same = coefficient_verdict(ctx, 0, 0, Interval.const(0), 8, 8)
    assert not same.independent


def test_pair_verdict_symbolic_bases_cancel():
    """Shared symbols in the two bases cancel exactly, leaving a constant
    delta that the equal-coefficient test decides without range info."""
    ctx = make_ctx(init=0, step=1, trips=4)
    base = Poly.sym(("livein", 7, 0))
    a = Poly.sym(THETA).scale(8) + base
    b = Poly.sym(THETA).scale(8) + base + Poly.const(1024)
    verdict = pair_verdict(ctx, a, 8, b, 8)
    assert verdict.independent  # distance 128 iterations > space of 4


def test_pair_verdict_rejects_nonlinear():
    ctx = make_ctx(init=0, step=1, trips=4)
    quad = Poly.sym(THETA) * Poly.sym(THETA)
    assert quad is not None
    verdict = pair_verdict(ctx, quad, 8, Poly.const(0), 8)
    assert not verdict.independent


def test_make_context_uses_static_facts(counting_loop_image):
    from repro.analysis.analyzer import analyze_image

    analysis = analyze_image(counting_loop_image)
    result = analysis.loops[0]
    ctx = make_context(result.induction, None)
    assert ctx.theta is not None
    assert ctx.theta_range == Interval(0, 9)
    assert ctx.max_distance == 9


def test_regions_disjoint_arg_scaled():
    """Regions 72*theta + [0, 72) never self-overlap across iterations."""
    ctx = make_ctx(init=0, step=1, trips=64)
    base = Poly.sym(THETA).scale(72)
    region = RegionInterval(base=base, span=Interval(0, 72))
    verdict = regions_disjoint(ctx, region, region)
    assert verdict.independent, verdict

    wide = RegionInterval(base=base, span=Interval(0, 80))
    verdict = regions_disjoint(ctx, wide, wide)
    assert not verdict.independent


def test_regions_disjoint_constant_base_conflicts():
    ctx = make_ctx(init=0, step=1, trips=8)
    region = RegionInterval(base=Poly.const(4096), span=Interval(0, 64))
    verdict = regions_disjoint(ctx, region, region)
    assert not verdict.independent


def test_verdict_dependent_has_reason():
    v = Verdict.dependent("because")
    assert not v.independent and v.chain == ("because",)


class TestVariantSymbolCancellation:
    """Loop-variant symbols must never cancel between the two operands of
    a cross-iteration test: a symbol q that varies per iteration stands
    for q_i on one side and q_j on the other, so ``A + 8*theta + x`` is
    NOT self-disjoint when x is produced inside the loop."""

    @staticmethod
    def loop(body):
        return SimpleNamespace(body=frozenset(body))

    def test_in_loop_opaque_blocks_region_self_disjointness(self):
        ctx = make_ctx(init=0, step=1, trips=64, loop=self.loop({5, 6, 7}))
        x = Poly.sym(("opaque", "call", 6, 0, 2))  # defined in the loop
        base = Poly.sym(THETA).scale(8) + x
        region = RegionInterval(base=base, span=Interval(0, 8))
        verdict = regions_disjoint(ctx, region, region)
        assert not verdict.independent
        assert any("loop-variant" in s for s in verdict.chain)

    def test_out_of_loop_opaque_still_cancels(self):
        ctx = make_ctx(init=0, step=1, trips=64, loop=self.loop({5, 6, 7}))
        x = Poly.sym(("opaque", "call", 2, 0, 2))  # defined before it
        base = Poly.sym(THETA).scale(8) + x
        region = RegionInterval(base=base, span=Interval(0, 8))
        assert regions_disjoint(ctx, region, region).independent

    def test_without_loop_opaque_is_conservatively_variant(self):
        ctx = make_ctx(init=0, step=1, trips=64)  # loop unknown
        x = Poly.sym(("opaque", "call", 2, 0, 2))
        base = Poly.sym(THETA).scale(8) + x
        region = RegionInterval(base=base, span=Interval(0, 8))
        assert not regions_disjoint(ctx, region, region).independent

    def test_non_theta_header_phi_blocks_pair(self):
        ctx = make_ctx(init=0, step=1, trips=64, loop=self.loop({5}))
        q = Poly.sym(("phi", 2, 9))  # secondary IV, not the iterator
        a = Poly.sym(THETA).scale(8) + q
        b = Poly.sym(THETA).scale(8) + q + Poly.const(1024)
        verdict = pair_verdict(ctx, a, 8, b, 8)
        assert not verdict.independent
        assert any("loop-variant" in s for s in verdict.chain)

    def test_livein_still_cancels_with_loop_set(self):
        ctx = make_ctx(init=0, step=1, trips=4, loop=self.loop({5}))
        base = Poly.sym(("livein", 7, 0))
        a = Poly.sym(THETA).scale(8) + base
        b = Poly.sym(THETA).scale(8) + base + Poly.const(1024)
        assert pair_verdict(ctx, a, 8, b, 8).independent

    def test_load_value_symbol_is_variant(self):
        # The value AT a loop-invariant address may be rewritten during
        # the loop, so it must not cancel either.
        ctx = make_ctx(init=0, step=1, trips=64, loop=self.loop({5}))
        v = Poly.sym(("load", ("livein", 7, 0)))
        a = Poly.sym(THETA).scale(8) + v
        b = Poly.sym(THETA).scale(8) + v + Poly.const(1024)
        assert not pair_verdict(ctx, a, 8, b, 8).independent

    def test_unshared_variant_symbol_does_not_trigger_guard(self):
        # Only SHARED variant symbols are the cancellation hazard; a
        # variant symbol on one side alone flows into the delta range and
        # is handled (conservatively) by the range machinery.
        ctx = make_ctx(init=0, step=1, trips=64, loop=self.loop({5, 6}))
        x = Poly.sym(("opaque", "call", 6, 0, 2))
        a = Poly.sym(THETA).scale(8) + x
        b = Poly.sym(THETA).scale(8)
        verdict = pair_verdict(ctx, a, 8, b, 8)
        # No ranges: unbounded delta, still dependent — but through the
        # delta path, not the shared-symbol guard.
        assert not verdict.independent
        assert not any("loop-variant" in s for s in verdict.chain)

    def test_loop_variant_classification(self):
        ctx = make_ctx(init=0, step=1, trips=8, loop=self.loop({4, 5}))
        assert not loop_variant(ctx, ("livein", 7, 0))
        assert not loop_variant(ctx, THETA)
        assert loop_variant(ctx, ("phi", 2, 9))
        assert loop_variant(ctx, ("load", ("livein", 7, 0)))
        assert loop_variant(ctx, ("opaque", "load", 4, 3))
        assert not loop_variant(ctx, ("opaque", "load", 1, 3))
        # Opaque phi with no SSA context available: conservative.
        assert loop_variant(ctx, ("opaque", "phi", 2, 9))
