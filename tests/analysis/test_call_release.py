"""Interprocedural call release: end-to-end tests on compiled jcc code.

A loop whose only cross-iteration hazard is a call to a callee that writes
a provably iteration-disjoint region must classify STATIC_DOALL with the
call *released* from STM scope, and the released schedule must execute
byte-identically to the native run.
"""

from repro.analysis import LoopCategory, analyze_image
from repro.dbm.executor import run_native
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode
from repro.rewrite.gen_parallel import generate_parallel_schedule

# Each outer iteration hands a distinct 8-word row of A/B to the callee.
# The callee's write region is 64*i + [base, base+64): provably disjoint
# across iterations, so both outer loops (jcc emits an unrolled main loop
# and a remainder loop) should release their call sites from STM scope.
ROW_SOURCE = """
double A[512];
double B[512];

void add_row(int i) {
    int j;
    for (j = 0; j < 8; j = j + 1) {
        A[i * 8 + j] = B[i * 8 + j] + 1.0;
    }
}

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        add_row(i);
    }
    print_int(0);
    return 0;
}
"""

# Same shape, but every iteration writes A[j] — the callee regions overlap
# across iterations, so the call must NOT be released.
CLASH_SOURCE = """
double A[512];
double B[512];

void add_row(int i) {
    int j;
    for (j = 0; j < 8; j = j + 1) {
        A[j] = B[i * 8 + j] + 1.0;
    }
}

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        add_row(i);
    }
    print_int(0);
    return 0;
}
"""


# The callee stores once more after its loop, through the iterator's exit
# value (j == 8): the summarised write window must stretch to 72 bytes per
# iteration and the call is still releasable at stride 72.
EXIT_STORE_SOURCE = """
double A[576];

void fill(int n) {
    int j;
    for (j = 0; j < 8; j = j + 1) {
        A[n * 9 + j] = 1.0;
    }
    A[n * 9 + j] = 2.0;
}

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        fill(i);
    }
    print_int(0);
    return 0;
}
"""


def _outer_loops(analysis):
    """Loops (in main) that contain at least one internal call site."""
    return [r for r in analysis.loops if r.internal_calls]


class TestCallRelease:
    def test_disjoint_rows_release_calls(self):
        image = compile_source(ROW_SOURCE, CompileOptions(opt_level=2))
        analysis = analyze_image(image)
        outer = _outer_loops(analysis)
        assert outer, "expected outer loops with call sites"
        for result in outer:
            assert result.category is LoopCategory.STATIC_DOALL, \
                f"loop {result.loop_id}: {result.reasons}"
            assert result.released_call_sites, \
                f"loop {result.loop_id} released nothing"
            assert not result.stm_call_sites
            for site in result.released_call_sites:
                chain = result.call_release_chains[site]
                assert chain, f"empty release chain for site {site:#x}"
                assert all(isinstance(step, str) and step for step in chain)

    def test_release_chain_mentions_evidence(self):
        image = compile_source(ROW_SOURCE, CompileOptions(opt_level=2))
        analysis = analyze_image(image)
        chains = [step
                  for result in _outer_loops(analysis)
                  for chain in result.call_release_chains.values()
                  for step in chain]
        assert chains
        text = "\n".join(chains)
        # The chain must carry quantitative evidence, not just a verdict.
        assert "stride" in text or "distance" in text or "disjoint" in text

    def test_overlapping_rows_stay_guarded(self):
        image = compile_source(CLASH_SOURCE, CompileOptions(opt_level=2))
        analysis = analyze_image(image)
        outer = _outer_loops(analysis)
        assert outer
        for result in outer:
            assert not result.released_call_sites, \
                f"loop {result.loop_id} wrongly released a clashing call"
            assert result.category is not LoopCategory.STATIC_DOALL

    def test_post_loop_exit_store_released_and_correct(self):
        image = compile_source(EXIT_STORE_SOURCE, CompileOptions(opt_level=2))
        analysis = analyze_image(image)
        outer = _outer_loops(analysis)
        assert outer
        released = [r for r in outer if r.released_call_sites]
        assert released, "exit-store callee should still be releasable"
        for result in released:
            assert result.category is LoopCategory.STATIC_DOALL
            assert not result.stm_call_sites
        native = run_native(load(image))
        janus = Janus(image, JanusConfig(n_threads=4,
                                         coverage_threshold=0.0))
        released_ids = [r.loop_id for r in janus.analysis.loops
                        if r.released_call_sites]
        assert released_ids
        schedule = generate_parallel_schedule(janus.analysis, released_ids)
        result = janus.run(SelectionMode.JANUS, schedule=schedule)
        assert result.outputs == native.outputs
        assert result.data_snapshot() == native.data_snapshot()
        assert result.exit_code == native.exit_code

    def test_released_schedule_runs_byte_identical(self):
        image = compile_source(ROW_SOURCE, CompileOptions(opt_level=2))
        native = run_native(load(image))
        janus = Janus(image, JanusConfig(n_threads=4,
                                         coverage_threshold=0.0))
        # Schedule exactly the loops whose call sites were released, so
        # the parallel run exercises the released (STM-free) call path.
        released = [r.loop_id for r in janus.analysis.loops
                    if r.released_call_sites]
        assert released
        schedule = generate_parallel_schedule(janus.analysis, released)
        result = janus.run(SelectionMode.JANUS, schedule=schedule)
        assert result.outputs == native.outputs
        assert result.data_snapshot() == native.data_snapshot()
        assert result.exit_code == native.exit_code
        assert result.stats["loop_invocations_parallel"] >= 1

    def test_clashing_schedule_still_correct(self):
        image = compile_source(CLASH_SOURCE, CompileOptions(opt_level=2))
        native = run_native(load(image))
        janus = Janus(image, JanusConfig(n_threads=4,
                                         coverage_threshold=0.0))
        training = janus.train()
        result = janus.run(SelectionMode.JANUS, training=training)
        assert result.outputs == native.outputs
        assert result.data_snapshot() == native.data_snapshot()
        assert result.exit_code == native.exit_code
