"""Tests for polynomial canonicalisation (Poly + ExprBuilder)."""

from hypothesis import given, strategies as st

from repro.analysis.expr import Poly, livein_symbols_evaluable


S1 = ("livein", 1, 0)
S2 = ("livein", 2, 0)
PHI = ("phi", 3, 1)


class TestPoly:
    def test_constants(self):
        assert Poly.const(0).is_zero
        assert Poly.const(5).is_constant
        assert Poly.const(5).constant_value == 5

    def test_addition_cancels(self):
        p = Poly.sym(S1) + Poly.const(3)
        q = p - Poly.sym(S1)
        assert q.is_constant
        assert q.constant_value == 3
        assert (p - p).is_zero

    def test_scale(self):
        p = Poly.sym(S1).scale(4) + Poly.const(8)
        assert p.terms[(S1,)] == 4
        assert p.constant_value == 8
        assert p.scale(0).is_zero

    def test_multiplication(self):
        p = Poly.sym(S1) + Poly.const(2)
        q = Poly.sym(S2) + Poly.const(3)
        prod = p * q
        assert prod is not None
        assert prod.terms[tuple(sorted((S1, S2)))] == 1
        assert prod.terms[(S1,)] == 3
        assert prod.terms[(S2,)] == 2
        assert prod.constant_value == 6

    def test_multiplication_degree_cap(self):
        p = Poly.sym(S1)
        high = p
        for _ in range(3):
            result = high * p
            if result is None:
                break
            high = result
        assert high * p is None  # degree 4 exceeds the cap

    def test_linear_in(self):
        p = Poly.sym(PHI).scale(8) + Poly.sym(S1) + Poly.const(16)
        decomposed = p.linear_in(PHI)
        assert decomposed is not None
        coeff, rest = decomposed
        assert coeff == 8
        assert not rest.mentions(PHI)
        assert rest.constant_value == 16

    def test_linear_in_rejects_quadratic(self):
        squared = Poly.sym(PHI) * Poly.sym(PHI)
        assert squared is not None
        assert squared.linear_in(PHI) is None

    def test_linear_in_missing_symbol(self):
        p = Poly.sym(S1) + Poly.const(1)
        coeff, rest = p.linear_in(PHI)
        assert coeff == 0
        assert rest == p

    def test_substitute(self):
        p = Poly.sym(PHI).scale(2) + Poly.const(1)
        out = p.substitute(PHI, Poly.sym(S1) + Poly.const(10))
        assert out is not None
        assert out.terms[(S1,)] == 2
        assert out.constant_value == 21

    def test_equality_and_hash(self):
        a = Poly.sym(S1) + Poly.const(1)
        b = Poly.const(1) + Poly.sym(S1)
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_evaluable(self):
        assert livein_symbols_evaluable(Poly.sym(S1) + Poly.const(4))
        assert livein_symbols_evaluable(Poly.const(4))
        assert not livein_symbols_evaluable(Poly.sym(PHI))
        assert not livein_symbols_evaluable(Poly.sym(("opaque", "x")))


@given(st.lists(st.tuples(st.sampled_from([S1, S2]),
                          st.integers(-50, 50)), max_size=8))
def test_poly_add_commutes(pairs):
    a = Poly()
    b = Poly()
    for sym, coeff in pairs:
        a = a + Poly.sym(sym).scale(coeff)
        b = Poly.sym(sym).scale(coeff) + b
    assert a == b


@given(st.integers(-100, 100), st.integers(-100, 100))
def test_poly_constant_ring(x, y):
    assert (Poly.const(x) + Poly.const(y)).constant_value == x + y
    product = Poly.const(x) * Poly.const(y)
    assert product is not None
    assert product.constant_value == x * y
