"""Unit tests for the value-range lattice and iterator-range solver."""

from repro.analysis.classify import _function_ranges
from repro.analysis.induction import BasicIV, IteratorInfo
from repro.analysis.vrange import (
    Interval,
    disjoint,
    iterator_range,
    max_trip_distance,
)
from repro.analysis import analyze_image
from repro.jcc import CompileOptions, compile_source


def iv(step):
    return BasicIV(var=1, phi=None, step=step, init_version=0)


def make_info(step=1, cond="l", test_offset=0, test_position="top",
              static_trip_count=None, static_init=None):
    return IteratorInfo(
        iv=iv(step), cmp_block=0, cmp_index=0, cmp_address=0,
        jcc_address=0, iv_operand_index=0, bound_operand=None,
        bound_poly=None, cond=cond, test_offset=test_offset,
        test_position=test_position, exit_target=0,
        static_trip_count=static_trip_count, static_init=static_init)


class TestIntervalLattice:
    def test_constructors_and_predicates(self):
        assert Interval.top() == Interval(None, None)
        assert Interval.const(5) == Interval(5, 5)
        assert Interval.const(5).is_const
        assert Interval(0, 3).is_bounded
        assert not Interval(0, None).is_bounded
        assert Interval(2, 7).width == 5
        assert Interval(2, None).width is None
        assert Interval(1, 4).contains(4)
        assert not Interval(1, 4).contains(5)
        assert Interval(None, 4).contains(-1000)

    def test_arithmetic(self):
        a, b = Interval(1, 3), Interval(10, 20)
        assert a.add(b) == Interval(11, 23)
        assert a.add(Interval(None, 5)) == Interval(None, 8)
        assert a.shift(100) == Interval(101, 103)
        assert Interval(None, 3).shift(-1) == Interval(None, 2)
        assert a.neg() == Interval(-3, -1)
        assert Interval(None, 3).neg() == Interval(-3, None)
        assert b.sub(a) == Interval(7, 19)

    def test_scale(self):
        a = Interval(1, 3)
        assert a.scale(0) == Interval.const(0)
        assert a.scale(8) == Interval(8, 24)
        # Negative factors swap the bounds.
        assert a.scale(-2) == Interval(-6, -2)
        assert Interval(None, 3).scale(-1) == Interval(-3, None)

    def test_mul_corner_analysis(self):
        assert Interval(2, 2).mul(Interval(-1, 5)) == Interval(-2, 10)
        assert Interval(-1, 5).mul(Interval(2, 2)) == Interval(-2, 10)
        assert Interval(-2, 3).mul(Interval(-4, 5)) == Interval(-12, 15)
        assert Interval(0, None).mul(Interval(1, 2)) == Interval.top()

    def test_join_meet(self):
        a, b = Interval(0, 4), Interval(2, 9)
        assert a.join(b) == Interval(0, 9)
        assert a.join(Interval(None, 1)) == Interval(None, 4)
        assert a.meet(b) == Interval(2, 4)
        assert a.meet(Interval(5, 9)) is None       # empty intersection
        assert a.meet(Interval.top()) == a

    def test_widen_drops_moving_bounds(self):
        old, new = Interval(0, 10), Interval(0, 20)
        assert old.widen(new) == Interval(0, None)
        assert old.widen(Interval(-5, 10)) == Interval(None, 10)
        assert old.widen(Interval(2, 9)) == old     # nothing moved outward

    def test_disjoint_half_open(self):
        # [0, 8) vs [8, 16): touching half-open ranges are disjoint.
        assert disjoint(Interval(0, 8), Interval(8, 16))
        assert disjoint(Interval(8, 16), Interval(0, 8))
        assert not disjoint(Interval(0, 9), Interval(8, 16))
        assert not disjoint(Interval(0, None), Interval(8, 16))


class TestIteratorRange:
    def test_top_tested_forward(self):
        # for (i = 0; i < n; i++) with n in [1, 64]: the header phi is
        # evaluated one final time with the failing value, so the full
        # range reaches 64 while the body-only range stops at 63.
        info = make_info(step=1, cond="l", test_position="top")
        theta = iterator_range(info, Interval.const(0), Interval(1, 64))
        assert theta == Interval(0, 64)
        body = iterator_range(info, Interval.const(0), Interval(1, 64),
                              include_exit=False)
        assert body == Interval(0, 63)

    def test_bottom_test_joins_init(self):
        # do { ... } while (i < 8) with init up to 8: the first header
        # value runs unchecked, so init joins the bound-derived limit.
        # A bottom test never re-evaluates the phi after failing, so the
        # exit-inclusive and body ranges coincide.
        info = make_info(step=1, cond="l", test_position="bottom")
        theta = iterator_range(info, Interval(0, 8), Interval.const(8))
        # tested_max = 7; bottom test constrains the previous iteration,
        # so limit = 7 + 1 = 8; join with init.hi = 8.
        assert theta == Interval(0, 8)
        assert iterator_range(info, Interval(0, 8), Interval.const(8),
                              include_exit=False) == Interval(0, 8)

    def test_le_condition(self):
        info = make_info(step=1, cond="le", test_position="top")
        theta = iterator_range(info, Interval.const(0), Interval.const(9))
        assert theta == Interval(0, 10)
        assert iterator_range(info, Interval.const(0), Interval.const(9),
                              include_exit=False) == Interval(0, 9)

    def test_backward_step(self):
        # for (i = 63; i > 0; i--): the failing evaluation sees 0.
        info = make_info(step=-1, cond="g", test_position="top")
        theta = iterator_range(info, Interval.const(63), Interval.const(0))
        assert theta == Interval(0, 63)
        assert iterator_range(info, Interval.const(63), Interval.const(0),
                              include_exit=False) == Interval(1, 63)

    def test_zero_trip_exit_is_init(self):
        # When even the first test can fail, the exit evaluation is the
        # init value itself: init up to 100 keeps hi at 100, not limit+1.
        info = make_info(step=1, cond="l", test_position="top")
        theta = iterator_range(info, Interval(0, 100), Interval.const(8))
        assert theta == Interval(0, 100)

    def test_static_trip_count_is_exact(self):
        info = make_info(step=2, cond="l", test_position="top",
                         static_init=0, static_trip_count=32)
        theta = iterator_range(info, Interval.const(0), Interval.top())
        assert theta == Interval(0, 64)
        assert iterator_range(info, Interval.const(0), Interval.top(),
                              include_exit=False) == Interval(0, 62)

    def test_unknown_bound_is_open(self):
        info = make_info(step=1, cond="l", test_position="top")
        theta = iterator_range(info, Interval.const(0), Interval.top())
        assert theta == Interval(0, None)

    def test_max_trip_distance(self):
        assert max_trip_distance(Interval(0, 63), 1) == 63
        assert max_trip_distance(Interval(0, 62), 2) == 31
        assert max_trip_distance(Interval(0, None), 1) is None
        assert max_trip_distance(Interval(0, 63), 0) is None


class TestEntryGuardRefinement:
    """jcc unrolled loops: the remainder loop's entry edge is guarded by
    ``cmp i, bound; jl``, so its header phi never exceeds bound - 1 even
    though its init value is a join of main-loop exit values."""

    SOURCE = """
    double A[512];

    int main() {
        int i;
        for (i = 0; i < 64; i = i + 1) {
            A[i] = 1.0;
        }
        print_int(0);
        return 0;
    }
    """

    def test_remainder_phi_clipped_by_entry_guard(self):
        image = compile_source(self.SOURCE, CompileOptions(opt_level=3))
        analysis = analyze_image(image)
        checked = 0
        for result in analysis.loops:
            info = result.induction.iterator
            if info is None:
                continue
            fa = analysis.function_of_loop(result)
            ranges = _function_ranges(fa.ssa, fa.dom, None)
            sym = ("phi", info.iv.phi.var, info.iv.phi.dest)
            # Body-executing iterations stay under the bound ...
            body = ranges.iterator_body_range(sym)
            assert body.lo is not None and body.lo >= 0
            assert body.hi is not None and body.hi <= 63, \
                f"loop {result.loop_id}: body range {body} exceeds bound"
            # ... while the full phi range also covers the one failing
            # evaluation, at most one step past the bound.
            theta = ranges.phi_range(sym)
            assert theta.lo is not None and theta.lo >= 0
            assert theta.hi is not None \
                and theta.hi <= 63 + abs(info.iv.step), \
                f"loop {result.loop_id}: phi range {theta} exceeds exit"
            assert theta.hi >= body.hi
            checked += 1
        # 2x unrolling produces at least a main loop and a remainder loop.
        assert checked >= 2
