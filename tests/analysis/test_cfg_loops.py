"""Tests for disassembly, CFG recovery, dominators, and loop detection."""

from repro.isa import Imm, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.analysis.disasm import disassemble
from repro.analysis.cfg import build_cfgs
from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import find_loops, outermost_loops
from repro.analysis.stack import track_stack

from tests.analysis.conftest import assemble


def analyse(image):
    dis = disassemble(image)
    cfgs = build_cfgs(dis)
    return dis, cfgs


def test_disassembly_covers_reachable_code(counting_loop_image):
    dis = disassemble(counting_loop_image)
    assert len(dis) == 7
    assert dis.function_entries == {counting_loop_image.entry}
    assert not dis.indirect_sites


def test_unreachable_code_not_decoded():
    def build(a):
        a.label("_start")
        a.emit(O.JMP, Label("end"))
        a.emit(O.MOV, Reg(R.rax), Imm(1))  # dead
        a.label("end")
        a.emit(O.RET)

    dis = disassemble(assemble(build))
    assert len(dis) == 2


def test_cfg_blocks_and_edges(counting_loop_image):
    dis, cfgs = analyse(counting_loop_image)
    cfg = cfgs[counting_loop_image.entry]
    # Blocks: entry (2 instr), loop body (4 instr), ret.
    assert len(cfg.blocks) == 3
    entry = cfg.blocks[cfg.entry]
    assert len(entry.instructions) == 2
    loop_block = cfg.blocks[entry.succs[0]]
    assert len(loop_block.instructions) == 4
    assert set(loop_block.succs) == {loop_block.start, loop_block.end}
    assert loop_block.start in loop_block.preds


def test_functions_discovered_via_calls(nested_loop_image):
    dis, cfgs = analyse(nested_loop_image)
    assert len(cfgs) == 2  # _start and helper
    assert len(dis.function_entries) == 2


def test_external_calls_recorded():
    def build(a):
        fn = a.import_symbol("pow")
        a.label("_start")
        a.emit(O.CALL, fn)
        a.emit(O.RET)

    dis, cfgs = analyse(assemble(build))
    cfg = cfgs[next(iter(cfgs))]
    assert list(cfg.external_calls.values()) == ["pow"]
    assert not cfg.internal_calls


def test_indirect_jump_flags_function():
    def build(a):
        a.label("_start")
        a.emit(O.JMPI, Reg(R.rax))

    dis, cfgs = analyse(assemble(build))
    cfg = cfgs[next(iter(cfgs))]
    assert cfg.has_indirect


def test_syscall_flags_function():
    def build(a):
        a.label("_start")
        a.emit(O.SYSCALL)
        a.emit(O.RET)

    _, cfgs = analyse(assemble(build))
    assert cfgs[next(iter(cfgs))].has_syscall


def test_dominators_diamond(diamond_image):
    _, cfgs = analyse(diamond_image)
    cfg = cfgs[diamond_image.entry]
    dom = compute_dominators(cfg)
    blocks = sorted(cfg.blocks)
    entry = blocks[0]
    join = max(blocks)
    # The entry dominates everything; neither branch dominates the join.
    for b in blocks:
        assert dom.dominates(entry, b)
    assert dom.idom[join] == entry
    # The join is in the dominance frontier of both branch blocks.
    branches = [b for b in blocks if b not in (entry, join)]
    for b in branches:
        assert join in dom.frontier[b]


def test_single_loop_detected(counting_loop_image):
    _, cfgs = analyse(counting_loop_image)
    cfg = cfgs[counting_loop_image.entry]
    dom = compute_dominators(cfg)
    loops = find_loops(cfg, dom)
    assert len(loops) == 1
    loop = loops[0]
    assert loop.body == {loop.header}
    assert loop.latches == {loop.header}
    assert loop.preheader == cfg.entry
    assert len(loop.exit_edges) == 1


def test_nested_loops(nested_loop_image):
    _, cfgs = analyse(nested_loop_image)
    cfg = cfgs[nested_loop_image.entry]
    dom = compute_dominators(cfg)
    loops = find_loops(cfg, dom)
    assert len(loops) == 2
    outer = [l for l in loops if l.parent is None]
    inner = [l for l in loops if l.parent is not None]
    assert len(outer) == 1 and len(inner) == 1
    assert inner[0].parent is outer[0]
    assert inner[0].body < outer[0].body
    assert inner[0].depth == 1
    assert outermost_loops(loops) == outer


def test_stack_tracking_regular(counting_loop_image):
    _, cfgs = analyse(counting_loop_image)
    cfg = cfgs[counting_loop_image.entry]
    deltas = track_stack(cfg)
    assert deltas is not None
    assert deltas[cfg.entry] == 0


def test_stack_tracking_frame():
    def build(a):
        a.label("_start")
        a.emit(O.SUB, Reg(R.rsp), Imm(32))
        a.emit(O.CMP, Reg(R.rdi), Imm(0))
        a.emit(O.JL, Label("out"))
        a.emit(O.MOV, Reg(R.rax), Imm(1))
        a.label("out")
        a.emit(O.ADD, Reg(R.rsp), Imm(32))
        a.emit(O.RET)

    _, cfgs = analyse(assemble(build))
    cfg = cfgs[next(iter(cfgs))]
    deltas = track_stack(cfg)
    assert deltas is not None
    out_block = max(cfg.blocks)
    assert deltas[out_block] == -32


def test_stack_tracking_irregular():
    def build(a):
        a.label("_start")
        a.emit(O.MOV, Reg(R.rsp), Reg(R.rax))  # arbitrary rsp write
        a.emit(O.RET)

    _, cfgs = analyse(assemble(build))
    assert track_stack(cfgs[next(iter(cfgs))]) is None
