"""Tests for induction-variable recognition and iteration ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.analysis.cfg import build_cfgs
from repro.analysis.disasm import disassemble
from repro.analysis.dominators import compute_dominators
from repro.analysis.induction import (
    analyse_induction,
    chunk_bounds,
    trip_count,
)
from repro.analysis.loops import find_loops
from repro.analysis.ssa import build_ssa
from repro.analysis.stack import track_stack

from tests.analysis.conftest import assemble


def loop_ssa(image):
    dis = disassemble(image)
    cfgs = build_cfgs(dis)
    cfg = cfgs[image.entry]
    dom = compute_dominators(cfg)
    ssa = build_ssa(cfg, dom, track_stack(cfg))
    loops = find_loops(cfg, dom)
    return ssa, loops


class TestTripCount:
    def test_basic_upward(self):
        assert trip_count(0, 10, 1, "l") == 10
        assert trip_count(0, 10, 1, "le") == 11
        assert trip_count(0, 10, 2, "l") == 5
        assert trip_count(0, 9, 2, "l") == 5  # ceil

    def test_downward(self):
        assert trip_count(10, 0, -1, "g") == 10
        assert trip_count(10, 0, -1, "ge") == 11
        assert trip_count(10, 0, -2, "g") == 5

    def test_not_entered(self):
        assert trip_count(10, 0, 1, "l") == 0
        assert trip_count(0, 10, -1, "g") == 0

    def test_ne_condition(self):
        assert trip_count(0, 8, 2, "ne") == 4
        assert trip_count(0, 7, 2, "ne") == 0  # never equal: treated as 0

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            trip_count(0, 10, 0, "l")

    @given(start=st.integers(-1000, 1000), n=st.integers(0, 500),
           step=st.integers(1, 7))
    def test_simulation_agreement_upward(self, start, n, step):
        bound = start + n
        expected = len(range(start, bound, step))
        assert trip_count(start, bound, step, "l") == expected

    @given(start=st.integers(-1000, 1000), n=st.integers(0, 500),
           step=st.integers(1, 7))
    def test_simulation_agreement_le(self, start, n, step):
        bound = start + n
        count = 0
        i = start
        while i <= bound:
            count += 1
            i += step
        assert trip_count(start, bound, step, "le") == count


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread(self):
        chunks = chunk_bounds(10, 4)
        sizes = [b - a for a, b in chunks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        assert chunks[0][0] == 0 and chunks[-1][1] == 10

    def test_more_threads_than_trips(self):
        chunks = chunk_bounds(2, 4)
        sizes = [b - a for a, b in chunks]
        assert sizes == [1, 1, 0, 0]

    @given(trips=st.integers(0, 10_000), threads=st.integers(1, 16))
    def test_partition_property(self, trips, threads):
        chunks = chunk_bounds(trips, threads)
        assert len(chunks) == threads
        position = 0
        for start, end in chunks:
            assert start == position
            assert end >= start
            position = end
        assert position == trips


class TestIteratorRecognition:
    def test_simple_counted_loop(self, counting_loop_image):
        ssa, loops = loop_ssa(counting_loop_image)
        analysis = analyse_induction(ssa, loops[0])
        assert analysis.iterator is not None
        it = analysis.iterator
        assert it.iv.var == R.rcx
        assert it.iv.step == 1
        assert it.cond == "le"
        assert it.static_trip_count == 10
        assert not analysis.has_side_exits
        # rax accumulates: a non-IV header phi.
        assert any(phi.var == R.rax for phi in analysis.other_phis)

    def test_strided_and_downward_loops(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rcx), Imm(100))
            a.label("down")
            a.emit(O.SUB, Reg(R.rcx), Imm(4))
            a.emit(O.CMP, Reg(R.rcx), Imm(0))
            a.emit(O.JG, Label("down"))
            a.emit(O.RET)

        ssa, loops = loop_ssa(assemble(build))
        analysis = analyse_induction(ssa, loops[0])
        assert analysis.iterator is not None
        assert analysis.iterator.iv.step == -4
        assert analysis.iterator.cond == "g"
        assert analysis.iterator.test_position == "bottom"
        assert analysis.iterator.test_offset == -4
        # rcx: 100 -> 96 -> ... -> 0; the sub executes 25 times.
        assert analysis.iterator.static_trip_count == 25

    def test_runtime_bound_loop(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rdx), Mem(disp=Label("n")))
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Reg(R.rdx))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)
            a.word("n", 500)

        ssa, loops = loop_ssa(assemble(build))
        analysis = analyse_induction(ssa, loops[0])
        it = analysis.iterator
        assert it is not None
        assert it.static_trip_count is None  # bound only known at runtime
        assert isinstance(it.bound_operand, Reg)
        assert it.bound_operand.id == R.rdx

    def test_multiple_basic_ivs(self):
        """Index and strided pointer advancing together."""

        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.emit(O.MOV, Reg(R.r8), Imm(0x10000000))
            a.label("loop")
            a.emit(O.ADD, Reg(R.r8), Imm(8))
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(64))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        ssa, loops = loop_ssa(assemble(build))
        analysis = analyse_induction(ssa, loops[0])
        ivs = {iv.var: iv.step for iv in analysis.basic_ivs}
        assert ivs == {R.rcx: 1, R.r8: 8}
        assert analysis.iterator.iv.var == R.rcx

    def test_side_exit_detected(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.CMP, Reg(R.rax), Imm(7))
            a.emit(O.JE, Label("out"))        # data-dependent break
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(10))
            a.emit(O.JL, Label("loop"))
            a.label("out")
            a.emit(O.RET)

        ssa, loops = loop_ssa(assemble(build))
        analysis = analyse_induction(ssa, loops[0])
        assert analysis.iterator is not None
        assert analysis.has_side_exits

    def test_irregular_update_rejected(self):
        """i = i * 2 is not a basic induction variable."""

        def build(a):
            a.label("_start")
            a.emit(O.MOV, Reg(R.rcx), Imm(1))
            a.label("loop")
            a.emit(O.IMUL, Reg(R.rcx), Imm(2))
            a.emit(O.CMP, Reg(R.rcx), Imm(1024))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        ssa, loops = loop_ssa(assemble(build))
        analysis = analyse_induction(ssa, loops[0])
        assert analysis.iterator is None
        assert not analysis.basic_ivs
