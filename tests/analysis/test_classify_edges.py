"""Edge paths of the loop classifier: rejection reasons and C/D edges.

Complements test_classify.py: these tests pin the *reason strings*
attached to each rejection (the verifier and the reports surface them
verbatim) and the less-travelled promotion/demotion edges around the
dependence profile.
"""

from repro.analysis import LoopCategory, VariableClass, analyze_image
from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R

from tests.analysis.conftest import assemble

RAX, RCX, RDI = Reg(R.rax), Reg(R.rcx), Reg(R.rdi)


def single_loop(image):
    analysis = analyze_image(image)
    assert len(analysis.loops) == 1
    return analysis.loops[0]


class TestNonAffineAccumulators:
    def test_geometric_accumulator_is_not_a_reduction(self):
        """sum = 2*sum + a[i]: the carried register folds multiplicatively,
        so it cannot be privatised per-thread and recombined."""

        def build(a):
            a.word("arr", *range(16))
            a.label("_start")
            a.emit(O.MOV, RAX, Imm(1))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.IMUL, RAX, Imm(2))
            a.emit(O.ADD, RAX, Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DEPENDENCE
        assert not loop.is_parallelisable
        info = loop.variables.get(R.rax)
        assert info is None or info.vclass is not VariableClass.REDUCTION
        assert any("loop-carried register value" in r for r in loop.reasons)

    def test_alternating_sign_via_sub_still_reduces(self):
        """sum -= a[i] folds into the additive polynomial: still type A."""

        def build(a):
            a.word("arr", *range(16))
            a.label("_start")
            a.emit(O.MOV, RAX, Imm(0))
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.SUB, RAX, Mem(index=R.rcx, scale=8, disp=Label("arr")))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.STATIC_DOALL
        assert loop.variables[R.rax].vclass is VariableClass.REDUCTION


class TestIncompatibleReasons:
    """The exact _mark_incompatible strings reports rely on."""

    def test_syscall_reason(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RDI, RCX)
            a.emit(O.MOV, RAX, Imm(1))
            a.emit(O.SYSCALL)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(4))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE
        assert "system call in loop body" in loop.reasons

    def test_io_call_reason_names_the_symbol(self):
        def build(a):
            pr = a.import_symbol("print_int")
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RDI, RCX)
            a.emit(O.CALL, pr)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(4))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE
        assert "IO library call print_int" in loop.reasons

    def test_no_induction_variable_reason(self):
        def build(a):
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(1))
            a.label("loop")
            a.emit(O.IMUL, RCX, Imm(2))
            a.emit(O.CMP, RCX, Imm(1024))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE
        assert "no recognisable induction variable" in loop.reasons

    def test_reserved_register_reason(self):
        def build(a):
            arr = a.space("arr", 16)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, Reg(R.r14), RCX)
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), Reg(R.r14))
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        loop = single_loop(assemble(build))
        assert loop.category is LoopCategory.INCOMPATIBLE
        assert "loop uses the Janus-reserved registers r14/r15" \
            in loop.reasons

    def test_incompatible_is_terminal_for_the_profile(self):
        """apply_dependence_profile must not resurrect an incompatible
        loop whatever the profiler claims."""

        def build(a):
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, RAX, Imm(1))
            a.emit(O.SYSCALL)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(4))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        loop = single_loop(assemble(build))
        loop.apply_dependence_profile(False)
        assert loop.category is LoopCategory.INCOMPATIBLE


class TestProfileEdges:
    def _doall_loop(self):
        def build(a):
            a.space("arr", 16)
            a.label("_start")
            a.emit(O.MOV, RCX, Imm(0))
            a.label("loop")
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=Label("arr")), RCX)
            a.emit(O.INC, RCX)
            a.emit(O.CMP, RCX, Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        return single_loop(assemble(build))

    def test_static_doall_untouched_by_dependence_profile(self):
        """A static claim is already resolved: the C/D split only moves
        dynamic candidates."""
        loop = self._doall_loop()
        assert loop.category is LoopCategory.STATIC_DOALL
        loop.apply_dependence_profile(True)
        assert loop.category is LoopCategory.STATIC_DOALL
        assert loop.profiled_dependence is True

    def test_dynamic_doall_survives_a_clean_profile(self):
        loop = self._doall_loop()
        loop.category = LoopCategory.DYNAMIC_DOALL
        loop.apply_dependence_profile(False)
        assert loop.category is LoopCategory.DYNAMIC_DOALL
        assert loop.is_parallelisable

    def test_demotion_reason_recorded(self):
        loop = self._doall_loop()
        loop.category = LoopCategory.DYNAMIC_DOALL
        loop.apply_dependence_profile(True)
        assert loop.category is LoopCategory.DYNAMIC_DEPENDENCE
        assert "dependence observed during profiling" in loop.reasons
        assert not loop.is_parallelisable
