"""Direct unit tests for alias-analysis internals."""

import pytest

from repro.analysis.alias import (
    AccessGroup,
    MemAccess,
    _pair_dependence,
    _relative_range,
)
from repro.analysis.expr import Poly
from repro.isa.operands import Mem


def access(coeff, const, lanes=1, is_write=False):
    a = MemAccess(block=0, index=0, address=0, operand=Mem(disp=0),
                  is_write=is_write, lanes=lanes, poly=Poly())
    a.theta_coeff = coeff
    a.base = Poly.const(const)
    return a


class TestPairDependence:
    def test_same_address_same_iteration_is_fine(self):
        verdict = _pair_dependence(access(8, 0, is_write=True),
                                   access(8, 0), step=1, trips=100)
        assert verdict is None

    def test_distance_within_trip_count_is_dependence(self):
        verdict = _pair_dependence(access(8, 0, is_write=True),
                                   access(8, 8), step=1, trips=100)
        assert verdict is not None and verdict[0] == "dep"
        assert verdict[1].distance == 1

    def test_distance_outside_trip_count_is_independent(self):
        verdict = _pair_dependence(access(8, 0, is_write=True),
                                   access(8, 8 * 200), step=1, trips=100)
        assert verdict is None

    def test_unknown_trips_defers_to_runtime_check(self):
        verdict = _pair_dependence(access(8, 0, is_write=True),
                                   access(8, 8 * 200), step=1, trips=None)
        assert verdict is not None and verdict[0] == "check"

    def test_off_lattice_distance_is_independent(self):
        # Stride 16 bytes (unrolled step 2), distance 8: never coincide.
        verdict = _pair_dependence(access(8, 0, is_write=True),
                                   access(8, 8), step=2, trips=None)
        assert verdict is None

    def test_packed_lanes_expand(self):
        # A 2-lane write at 0 covers words 0 and 8: distance-8 read hits.
        verdict = _pair_dependence(access(8, 0, lanes=2, is_write=True),
                                   access(8, 8 * 3), step=2, trips=4)
        assert verdict is not None and verdict[0] == "dep"

    def test_negative_direction(self):
        verdict = _pair_dependence(access(-8, 0, is_write=True),
                                   access(-8, -8), step=1, trips=50)
        assert verdict is not None and verdict[0] == "dep"

    def test_differing_coefficients_conservative(self):
        verdict = _pair_dependence(access(8, 0, is_write=True),
                                   access(16, 0), step=1, trips=10)
        assert verdict is not None and verdict[0] == "dep"


class TestRelativeRange:
    def _group(self, *accesses):
        return AccessGroup(base_struct_key=(), base_struct=Poly(),
                           theta_coeff=accesses[0].theta_coeff,
                           accesses=list(accesses))

    def test_single_access(self):
        group = self._group(access(8, 0))
        assert _relative_range(group, 0, 9) == (0, 9 * 8 + 8)

    def test_lanes_extend_range(self):
        group = self._group(access(8, 0, lanes=4))
        lo, hi = _relative_range(group, 0, 0)
        assert (lo, hi) == (0, 32)

    def test_union_of_offsets(self):
        group = self._group(access(8, -8), access(8, 16))
        lo, hi = _relative_range(group, 0, 1)
        assert lo == -8
        assert hi == 16 + 8 + 8
