"""Tests for the BinaryAnalysis facade and its stripped-binary boundary."""

from repro.analysis import LoopCategory, analyze_image
from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jcc import CompileOptions, compile_source

from tests.analysis.conftest import assemble


SOURCE = """
int n = 64;
double a[64];
int main() {
    int i;
    for (i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
    return 0;
}
"""


class TestStrippedBoundary:
    def test_analysis_identical_with_and_without_symbols(self):
        """The analyser may not use symbol tables: results must match."""
        image = compile_source(SOURCE, CompileOptions(opt_level=3,
                                                      strip=False))
        assert not image.stripped
        with_symbols = analyze_image(image)
        without_symbols = analyze_image(image.strip())
        assert len(with_symbols.loops) == len(without_symbols.loops)
        for a, b in zip(with_symbols.loops, without_symbols.loops):
            assert a.category == b.category
            assert a.loop.header == b.loop.header
            assert a.reasons == b.reasons

    def test_comment_not_consulted(self):
        image = compile_source(SOURCE, CompileOptions(opt_level=3))
        modified = image.strip()
        modified.comment = "totally different compiler -O0"
        a = analyze_image(image)
        b = analyze_image(modified)
        assert [l.category for l in a.loops] == \
            [l.category for l in b.loops]


class TestFacadeQueries:
    def _analysis(self):
        def build(a):
            arr = a.space("arr", 16)
            a.label("_start")
            a.emit(O.MOV, Reg(R.rcx), Imm(0))
            a.label("loop")
            a.emit(O.MOV, Mem(index=R.rcx, scale=8, disp=arr), Reg(R.rcx))
            a.emit(O.INC, Reg(R.rcx))
            a.emit(O.CMP, Reg(R.rcx), Imm(16))
            a.emit(O.JL, Label("loop"))
            a.emit(O.RET)

        return analyze_image(assemble(build))

    def test_loop_lookup_by_id(self):
        analysis = self._analysis()
        for result in analysis.loops:
            assert analysis.loop(result.loop_id) is result

    def test_loops_in_category(self):
        analysis = self._analysis()
        doall = analysis.loops_in_category(LoopCategory.STATIC_DOALL)
        assert len(doall) == 1
        assert not analysis.loops_in_category(LoopCategory.INCOMPATIBLE)

    def test_category_histogram_sums_to_total(self):
        analysis = self._analysis()
        histogram = analysis.category_histogram()
        assert sum(histogram.values()) == len(analysis.loops)

    def test_function_of_loop(self):
        analysis = self._analysis()
        result = analysis.loops[0]
        fa = analysis.function_of_loop(result)
        assert result.loop in fa.loops
