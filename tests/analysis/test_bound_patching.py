"""Property tests for the trickiest runtime formulas: trip counts and
per-thread patched bounds.

``patched_bound`` must make a thread starting at ``chunk_init`` run
*exactly* ``n`` iterations under the loop's own test — verified here by
simulating the test semantics directly for every loop shape the compiler
and analyser produce.
"""

from hypothesis import assume, given, strategies as st

from repro.analysis.induction import (
    chunk_bounds,
    loop_iterations,
    patched_bound,
    trip_count,
)

_COND = {
    "l": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "g": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "ne": lambda a, b: a != b,
}


def simulate(init, bound, step, cond, offset, position, fuel=100_000):
    """Execute the loop shape literally; returns iterations run."""
    check = _COND[cond]
    iterator = init
    iterations = 0
    if position == "top":
        while check(iterator, bound):
            iterations += 1
            iterator += step
            if iterations > fuel:
                raise OverflowError
        return iterations
    # bottom: body runs, then the test sees iterator + residual offset.
    while True:
        iterations += 1
        iterator += step
        # tested value in iteration k is init + offset + step*k; after the
        # update above, iterator == init + step*iterations, so:
        tested = init + offset + step * (iterations - 1)
        if not check(tested, bound):
            return iterations
        if iterations > fuel:
            raise OverflowError


upward = st.tuples(st.integers(-100, 100),   # init
                   st.integers(1, 400),      # extent
                   st.integers(1, 7),        # step
                   st.sampled_from(["l", "le"]))
downward = st.tuples(st.integers(-100, 100),
                     st.integers(1, 400),
                     st.integers(-7, -1),
                     st.sampled_from(["g", "ge"]))


@given(shape=st.one_of(upward, downward),
       position=st.sampled_from(["top", "bottom"]),
       offset_is_step=st.booleans())
def test_loop_iterations_matches_simulation(shape, position,
                                            offset_is_step):
    init, extent, step, cond = shape
    bound = init + extent if step > 0 else init - extent
    offset = step if (position == "bottom" and offset_is_step) else (
        0 if position == "top" else step)
    simulated = simulate(init, bound, step, cond, offset, position) \
        if (position == "bottom" or _COND[cond](init, bound)) else 0
    if position == "top":
        expected = loop_iterations(init, bound, step, cond, 0, "top")
        assert expected == simulated if _COND[cond](init, bound) else True
        if not _COND[cond](init, bound):
            assert expected == 0
            return
    computed = loop_iterations(init, bound, step, cond, offset, position)
    assert computed == simulated


@given(shape=st.one_of(upward, downward),
       position=st.sampled_from(["top", "bottom"]),
       n_threads=st.integers(1, 8))
def test_patched_bound_runs_exact_chunk(shape, position, n_threads):
    """Every thread executes exactly its chunk size under its own bound."""
    init, extent, step, cond = shape
    bound = init + extent if step > 0 else init - extent
    offset = step if position == "bottom" else 0
    if position == "top" and not _COND[cond](init, bound):
        return  # zero-trip: guard skips, nothing to patch
    trips = loop_iterations(init, bound, step, cond, offset, position)
    assume(trips >= 1)
    total = 0
    for start, end in chunk_bounds(trips, n_threads):
        n = end - start
        if n == 0:
            continue
        chunk_init = init + step * start
        thread_bound = patched_bound(chunk_init, n, step, cond, offset,
                                     position)
        ran = simulate(chunk_init, thread_bound, step, cond, offset,
                       position)
        assert ran == n, (shape, position, start, end, thread_bound)
        total += n
    assert total == trips


@given(start=st.integers(-50, 50), n=st.integers(0, 300),
       step=st.integers(1, 9))
def test_trip_count_ne_condition(start, n, step):
    bound = start + n * step
    assert trip_count(start, bound, step, "ne") == n
