"""Shared fixtures for analysis tests: small hand-assembled programs."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin.asm import Assembler


def assemble(build, entry="_start"):
    a = Assembler()
    build(a)
    return a.assemble(entry=entry)


@pytest.fixture
def counting_loop_image():
    """for (rcx = 0; rcx <= 9; rcx++) rax += rcx; — a single DOALL-ish loop."""

    def build(a):
        a.label("_start")
        a.emit(O.MOV, Reg(R.rax), Imm(0))
        a.emit(O.MOV, Reg(R.rcx), Imm(0))
        a.label("loop")
        a.emit(O.ADD, Reg(R.rax), Reg(R.rcx))
        a.emit(O.INC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(9))
        a.emit(O.JLE, Label("loop"))
        a.emit(O.RET)

    return assemble(build)


@pytest.fixture
def nested_loop_image():
    """Two nested loops plus a called helper function."""

    def build(a):
        a.label("_start")
        a.emit(O.MOV, Reg(R.rsi), Imm(0))          # outer iterator
        a.label("outer")
        a.emit(O.MOV, Reg(R.rcx), Imm(0))          # inner iterator
        a.label("inner")
        a.emit(O.CALL, Label("helper"))
        a.emit(O.INC, Reg(R.rcx))
        a.emit(O.CMP, Reg(R.rcx), Imm(4))
        a.emit(O.JL, Label("inner"))
        a.emit(O.INC, Reg(R.rsi))
        a.emit(O.CMP, Reg(R.rsi), Imm(3))
        a.emit(O.JL, Label("outer"))
        a.emit(O.RET)
        a.label("helper")
        a.emit(O.MOV, Reg(R.rax), Imm(1))
        a.emit(O.RET)

    return assemble(build)


@pytest.fixture
def diamond_image():
    """If/else diamond with a join — exercises dominance frontiers and phis."""

    def build(a):
        a.label("_start")
        a.emit(O.CMP, Reg(R.rdi), Imm(0))
        a.emit(O.JL, Label("neg"))
        a.emit(O.MOV, Reg(R.rax), Imm(1))
        a.emit(O.JMP, Label("join"))
        a.label("neg")
        a.emit(O.MOV, Reg(R.rax), Imm(-1))
        a.label("join")
        a.emit(O.ADD, Reg(R.rax), Imm(10))
        a.emit(O.RET)

    return assemble(build)
