"""Tests for the evaluation harness and cheap figure functions.

The expensive figure functions are exercised (with shape assertions) by
the benchmark suite; here we test the harness mechanics and the figures
that need no execution.
"""

import math

from repro.eval import figures, reporting
from repro.eval.harness import EvalHarness
from repro.pipeline import SelectionMode


class TestGeomean:
    def test_basic(self):
        import pytest

        assert figures.geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert figures.geomean([3.0]) == pytest.approx(3.0)

    def test_empty_and_nonpositive(self):
        assert figures.geomean([]) == 0.0
        assert figures.geomean([0.0, -1.0]) == 0.0

    def test_matches_log_definition(self):
        values = [0.5, 1.3, 2.7, 6.1]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert abs(figures.geomean(values) - expected) < 1e-12


class TestHarnessCaching:
    def test_native_memoised(self):
        harness = EvalHarness()
        first = harness.native("400.perlbench")
        second = harness.native("400.perlbench")
        assert first is second

    def test_run_memoised_per_mode_and_threads(self):
        harness = EvalHarness()
        a = harness.run("400.perlbench", SelectionMode.DBM_ONLY)
        b = harness.run("400.perlbench", SelectionMode.DBM_ONLY)
        assert a is b

    def test_speedup_of_dbm_mode_below_native(self):
        harness = EvalHarness()
        assert harness.speedup("400.perlbench",
                               SelectionMode.DBM_ONLY) <= 1.0


class TestDiskCache:
    def test_native_roundtrip(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = EvalHarness(cache_dir=cache).native("400.perlbench")
        # A fresh harness (empty memo dicts) must hit the disk entry.
        reload_harness = EvalHarness(cache_dir=cache)
        second = reload_harness.native("400.perlbench")
        assert second is not first
        assert second.cycles == first.cycles
        assert second.outputs == first.outputs
        assert second.exit_code == first.exit_code
        # And the in-memory memo serves the same object afterwards.
        assert reload_harness.native("400.perlbench") is second

    def test_run_roundtrip_keyed_by_mode(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = EvalHarness(cache_dir=cache).run(
            "400.perlbench", SelectionMode.DBM_ONLY)
        second = EvalHarness(cache_dir=cache).run(
            "400.perlbench", SelectionMode.DBM_ONLY)
        assert second.cycles == first.cycles
        assert second.stats == first.stats

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = str(tmp_path / "cache")
        harness = EvalHarness(cache_dir=cache)
        harness.native("400.perlbench")
        # "garbage\n" makes pickle raise ValueError, b"\x80" EOFError:
        # any malformed entry must fall back to recomputation.
        for content in (b"garbage\n", b"\x80"):
            for name in (tmp_path / "cache").iterdir():
                name.write_bytes(content)
            fresh = EvalHarness(cache_dir=cache)
            result = fresh.native("400.perlbench")
            assert result.exit_code == 0

    def test_no_cache_dir_writes_nothing(self, tmp_path):
        harness = EvalHarness()
        harness.native("400.perlbench")
        assert list(tmp_path.iterdir()) == []


class TestTable2:
    def test_only_janus_ticks_all_boxes(self):
        rows = figures.table2_features()
        assert len(rows) == 4
        janus = [r for r in rows if r["tool"] == "Janus"][0]
        assert janus["runtime_checks"] and janus["shared_libraries"]
        text = reporting.render_table2(rows)
        assert "Janus" in text and "SecondWrite" in text

    def test_janus_row_derived_from_handlers(self):
        """Removing a handler must flip the derived capability."""
        from repro.dbm import handlers
        from repro.rewrite.rules import RuleID

        saved = handlers.HANDLERS.pop(RuleID.TX_START)
        try:
            rows = figures.table2_features()
            janus = [r for r in rows if r["tool"] == "Janus"][0]
            assert not janus["shared_libraries"]
        finally:
            handlers.HANDLERS[RuleID.TX_START] = saved


class TestRenderers:
    def test_fig7_renderer_includes_all_rows(self):
        rows = [
            {"benchmark": "x", "DynamoRIO": 0.9, "Statically-Driven": 1.0,
             "Statically-Driven + Profile": 1.1, "Janus": 2.0},
            {"benchmark": "Geomean", "DynamoRIO": 0.9,
             "Statically-Driven": 1.0,
             "Statically-Driven + Profile": 1.1, "Janus": 2.0},
        ]
        text = reporting.render_fig7(rows)
        assert "Geomean" in text and "2.00x" in text

    def test_fig9_renderer(self):
        rows = [{"benchmark": "x", "speedups": {1: 1.0, 8: 4.0}}]
        text = reporting.render_fig9(rows)
        assert "4.00x" in text

    def test_fig10_renderer(self):
        rows = [{"benchmark": "x", "binary_bytes": 1000,
                 "schedule_bytes": 50, "overhead": 0.05}]
        assert "5.0%" in reporting.render_fig10(rows)
