"""Tests for the ASCII figure renderers.

The renderers are exercised with small synthetic row sets rather than
full harness runs, so these tests stay fast and pin down the exact row
formats the figure functions must produce.
"""

from repro.eval.figures import BREAKDOWN_CATEGORIES, CATEGORY_ORDER
from repro.eval.reporting import (
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_table1,
    render_table2,
)


def test_render_fig6_all_categories_present():
    rows = [{
        "benchmark": "libquantum",
        "static": {c.value: 0.2 for c in CATEGORY_ORDER},
        "dynamic": {c.value: 0.1 for c in CATEGORY_ORDER},
    }]
    text = render_fig6(rows)
    assert "Figure 6" in text
    assert "libquantum" in text
    # One cell per category: "static%/dynamic%".
    assert text.splitlines()[-1].count("/") == len(CATEGORY_ORDER)
    assert "20%" in text and "10%" in text


def test_render_fig7_speedup_columns():
    rows = [
        {"benchmark": "lbm", "native": 1.0, "janus": 3.14},
        {"benchmark": "milc", "native": 1.0, "janus": 1.17},
    ]
    text = render_fig7(rows)
    lines = text.splitlines()
    assert lines[0].startswith("Figure 7")
    assert "native" in lines[1] and "janus" in lines[1]
    assert "3.14x" in text and "1.17x" in text
    assert len(lines) == 2 + len(rows)


def test_render_fig8_both_thread_counts():
    rows = [{
        "benchmark": "bwaves",
        "one_thread": {c: 1.0 / len(BREAKDOWN_CATEGORIES)
                       for c in BREAKDOWN_CATEGORIES},
        "eight_threads": {c: 0.5 / len(BREAKDOWN_CATEGORIES)
                          for c in BREAKDOWN_CATEGORIES},
    }]
    text = render_fig8(rows)
    assert "Figure 8" in text
    # Every cell carries "1T | 8T" separated values.
    assert text.splitlines()[-1].count("|") == len(BREAKDOWN_CATEGORIES)


def test_render_fig9_threads_sorted():
    rows = [{"benchmark": "lbm",
             "speedups": {8: 3.0, 1: 0.9, 4: 2.0, 2: 1.4}}]
    text = render_fig9(rows)
    header = text.splitlines()[1]
    # Thread counts render in ascending order regardless of dict order.
    positions = [header.index(str(t)) for t in (1, 2, 4, 8)]
    assert positions == sorted(positions)
    assert "3.00x" in text


def test_render_fig10_overhead_percentage():
    rows = [{"benchmark": "milc", "binary_bytes": 1000,
             "schedule_bytes": 150, "overhead": 0.15}]
    text = render_fig10(rows)
    assert "15.0%" in text
    assert "1000" in text and "150" in text


def test_render_fig11_four_speedup_columns():
    rows = [{"benchmark": "cactusADM", "gcc_parallel": 1.0,
             "janus_gcc": 2.5, "icc_parallel": 3.0, "janus_icc": 2.2}]
    text = render_fig11(rows)
    assert text.count("x") >= 4
    assert "2.50x" in text and "3.00x" in text


def test_render_fig12_labels_from_rows():
    rows = [{"benchmark": "bwaves", "O2": 2.0, "O3": 2.5, "O3-vec": 2.9}]
    text = render_fig12(rows)
    assert "O3-vec" in text
    assert "2.90x" in text


def test_render_table1_counts():
    rows = [{"benchmark": "bwaves", "loops_with_checks": 3,
             "avg_checks": 2.7}]
    text = render_table1(rows)
    assert "Table I" in text
    assert " 3 " in text or text.rstrip().endswith("2.7")
    assert "2.7" in text


def test_render_table2_yes_no_flags():
    rows = [{"tool": "Janus", "platform": "DynamoRIO / x86-64",
             "open_source": True, "automatic": True,
             "runtime_checks": True, "shared_libraries": True,
             "parallelisation": "static+dynamic"}]
    text = render_table2(rows)
    assert "Table II" in text
    assert "yes" in text and "no" not in text.splitlines()[-1].replace(
        "DynamoRIO", "")


def test_renderers_are_multiline_strings():
    # Each renderer returns a plain str with a title line: the CLI's
    # `figures` subcommand prints them verbatim.
    rows6 = [{"benchmark": "b",
              "static": {c.value: 0.0 for c in CATEGORY_ORDER},
              "dynamic": {c.value: 0.0 for c in CATEGORY_ORDER}}]
    for text in (render_fig6(rows6),
                 render_fig7([{"benchmark": "b", "janus": 1.0}])):
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 3
