"""Tests for the process-parallel evaluation fan-out.

Covers the three contract pieces: cell enumeration/dedup, end-to-end
figure identity between the 2-worker and serial paths, and cache
robustness under concurrent/corrupt writers.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.eval import figures, reporting, scheduler
from repro.eval.harness import EvalHarness, _options_key, options_from_key
from repro.eval.scheduler import Cell
from repro.jcc import CompileOptions
from repro.pipeline import SelectionMode
from repro.workloads import FIG7_BENCHMARKS, all_benchmarks

CHEAP = ["400.perlbench", "401.bzip2"]


class TestPlanning:
    def test_options_key_roundtrip(self):
        options = CompileOptions(opt_level=2, personality="icc", mavx=True)
        assert _options_key(options_from_key(_options_key(options))) \
            == _options_key(options)

    def test_fig7_cells(self):
        cells = scheduler.plan(["fig7"], n_threads=8)
        by_kind = {}
        for cell in cells:
            by_kind.setdefault(cell.kind, []).append(cell)
        assert len(by_kind["native"]) == len(FIG7_BENCHMARKS)
        # Four modes per benchmark, all at the harness default threads.
        assert len(by_kind["run"]) == 4 * len(FIG7_BENCHMARKS)
        assert all(c.threads == 8 for c in by_kind["run"])
        # One training per benchmark backs the two profile-guided modes.
        assert len(by_kind["training"]) == len(FIG7_BENCHMARKS)

    def test_dedup_across_figures(self):
        """Cells shared between figures are planned exactly once."""
        cells = scheduler.plan(["fig7", "fig8", "fig9"])
        assert len(set(cells)) == len(cells)
        janus8 = [c for c in cells if c.kind == "run"
                  and c.mode == "JANUS" and c.threads == 8]
        # fig7, fig8 and fig9 all need the Janus-at-8-threads run.
        assert len(janus8) == len(FIG7_BENCHMARKS)
        # No extra natives appear for fig8/fig9 beyond fig7's.
        assert len([c for c in cells if c.kind == "native"]) \
            == len(FIG7_BENCHMARKS)

    def test_stages_order_training_before_trained_runs(self):
        cells = scheduler.plan(["fig7"])
        for cell in cells:
            if cell.kind == "training":
                assert cell.stage == 0
            if cell.kind == "run":
                needs_training = cell.mode in ("STATIC_PROFILE", "JANUS")
                assert cell.stage == (1 if needs_training else 0)

    def test_benchmark_filter(self):
        cells = scheduler.plan(["fig6"], benchmarks=CHEAP)
        assert {c.benchmark for c in cells} == set(CHEAP)
        assert {c.kind for c in cells} == {"training", "fig6profile"}

    def test_fig6_covers_whole_suite(self):
        cells = scheduler.plan(["fig6"])
        assert {c.benchmark for c in cells} == set(all_benchmarks())

    def test_table2_plans_nothing(self):
        assert scheduler.plan(["table2"]) == []

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figures"):
            scheduler.plan(["fig99"])

    def test_cells_are_picklable(self):
        cells = scheduler.plan(["fig11", "fig12"])
        assert pickle.loads(pickle.dumps(cells)) == cells


class TestEndToEnd:
    def test_two_workers_identical_to_serial(self, tmp_path):
        """The acceptance contract: figure output must be byte-identical
        between the serial path and a 2-worker fan-out."""
        serial = EvalHarness()
        rows_serial = figures.fig6_classification(serial, benchmarks=CHEAP)

        parallel = EvalHarness(jobs=2, cache_dir=str(tmp_path / "cache"))
        warmed = parallel.warm(["fig6"], benchmarks=CHEAP)
        assert warmed == 2 * len(CHEAP)
        rows_parallel = figures.fig6_classification(parallel,
                                                    benchmarks=CHEAP)
        assert rows_parallel == rows_serial
        assert reporting.render_fig6(rows_parallel) \
            == reporting.render_fig6(rows_serial)

    def test_warm_is_noop_without_cache_or_jobs(self):
        assert EvalHarness(jobs=4).warm(["fig6"], benchmarks=CHEAP) == 0
        assert EvalHarness(jobs=1, cache_dir="/nonexistent").warm(
            ["fig6"], benchmarks=CHEAP) == 0

    def test_training_cache_replays_annotations(self, tmp_path):
        """A disk-cached training must leave the analysis in the same
        state a live training run produces (C/D split + coverage)."""
        cache = str(tmp_path / "cache")
        name = "410.bwaves"

        live = EvalHarness(cache_dir=cache)
        live.training(name)
        live_state = [
            (r.category, r.coverage_fraction, r.profiled_dependence,
             tuple(r.reasons))
            for r in live.janus_for(name).analysis.loops]

        replayed = EvalHarness(cache_dir=cache)
        replayed.training(name)  # disk hit: no profiling runs
        replayed_state = [
            (r.category, r.coverage_fraction, r.profiled_dependence,
             tuple(r.reasons))
            for r in replayed.janus_for(name).analysis.loops]
        assert replayed_state == live_state

    def test_digest_side_cache_avoids_recompilation(self, tmp_path):
        cache = str(tmp_path / "cache")
        EvalHarness(cache_dir=cache).native(CHEAP[0])
        assert any(f.startswith("digest-")
                   for f in os.listdir(cache))

        fresh = EvalHarness(cache_dir=cache)
        fresh.image = None  # any compile attempt would now blow up
        entry = fresh._cache_entry("native", CHEAP[0], CompileOptions())
        assert fresh._disk_get(*entry) is not None


def _hammer_disk_put(args):
    cache_dir, path, tag, value = args
    harness = EvalHarness(cache_dir=cache_dir)
    for _ in range(20):
        harness._disk_put(path, tag, value)
    return value


class TestConcurrentCache:
    def test_unique_temp_names_per_writer(self, tmp_path, monkeypatch):
        """Two writers of the same cell must never share a temp file."""
        harness = EvalHarness(cache_dir=str(tmp_path))
        seen = []
        real_replace = os.replace
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (seen.append(src), real_replace(src, dst)))
        path = str(tmp_path / "cell.pkl")
        harness._disk_put(path, "tag", 1)
        harness._disk_put(path, "tag", 2)
        assert len(set(seen)) == 2
        assert all(str(os.getpid()) in name for name in seen)

    def test_concurrent_writers_leave_one_valid_entry(self, tmp_path):
        """N processes × 20 writes to one cell: the surviving file is a
        complete entry from one writer and no temp litter remains."""
        cache_dir = str(tmp_path)
        path = os.path.join(cache_dir, "cell.pkl")
        tag = "shared-cell-tag"
        payloads = [(cache_dir, path, tag, f"writer-{i}") for i in range(4)]
        with multiprocessing.Pool(4) as pool:
            written = pool.map(_hammer_disk_put, payloads)
        result = EvalHarness(cache_dir=cache_dir)._disk_get(path, tag)
        assert result in written
        assert os.listdir(cache_dir) == ["cell.pkl"]

    def test_corrupt_and_colliding_entries_recomputed(self, tmp_path):
        """Truncated/garbage/tag-colliding cache files must fall back to
        recomputation under the fan-out, not poison the figures."""
        cache = str(tmp_path / "cache")
        reference = EvalHarness(jobs=2, cache_dir=cache)
        reference.warm(["fig6"], benchmarks=CHEAP)
        rows_reference = figures.fig6_classification(reference,
                                                     benchmarks=CHEAP)

        for entry in os.listdir(cache):
            full = os.path.join(cache, entry)
            if entry.endswith(".pkl"):
                with open(full, "wb") as fh:
                    fh.write(b"\x80corrupt")
        # A colliding entry: valid pickle, wrong tag for its filename.
        victim = sorted(e for e in os.listdir(cache)
                        if e.endswith(".pkl"))[0]
        with open(os.path.join(cache, victim), "wb") as fh:
            pickle.dump({"tag": "someone-else", "result": 42}, fh)

        again = EvalHarness(jobs=2, cache_dir=cache)
        again.warm(["fig6"], benchmarks=CHEAP)
        rows_again = figures.fig6_classification(again, benchmarks=CHEAP)
        assert rows_again == rows_reference


class TestRunCell:
    def test_run_cell_executes_each_kind(self, tmp_path):
        cache = str(tmp_path / "cache")
        key = _options_key(CompileOptions())
        for cell in (Cell("native", CHEAP[0], key),
                     Cell("training", CHEAP[0], key),
                     Cell("fig6profile", CHEAP[0], key),
                     Cell("run", CHEAP[0], key, "DBM_ONLY", 8)):
            assert scheduler.run_cell(cell, cache) == cell
        harness = EvalHarness(cache_dir=cache)
        assert harness.native(CHEAP[0]) is not None
        assert harness.run(CHEAP[0], SelectionMode.DBM_ONLY) is not None

    def test_unknown_kind_rejected(self, tmp_path):
        cell = Cell("nonsense", CHEAP[0], _options_key(CompileOptions()))
        with pytest.raises(ValueError, match="unknown cell kind"):
            scheduler.run_cell(cell, str(tmp_path))
