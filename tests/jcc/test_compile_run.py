"""End-to-end jcc tests: compile and run, across all option sets."""

import pytest

from repro.jcc import CompileOptions, compile_source
from repro.jbin.loader import load
from repro.dbm.executor import run_native

ALL_OPTIONS = [
    CompileOptions(opt_level=0),
    CompileOptions(opt_level=2),
    CompileOptions(opt_level=3),
    CompileOptions(opt_level=3, mavx=True),
    CompileOptions(opt_level=3, personality="icc"),
]


def run(source, options=None, inputs=None):
    image = compile_source(source, options or CompileOptions())
    return run_native(load(image, inputs=inputs))


def outputs(source, options=None, inputs=None):
    return run(source, options, inputs).outputs


@pytest.mark.parametrize("options", ALL_OPTIONS,
                         ids=lambda o: o.comment)
class TestAcrossAllLevels:
    def test_arithmetic(self, options):
        src = """
        int main() {
            print_int(7 * 6);
            print_int((100 - 1) / 7);
            print_int(17 % 5);
            print_int(1 << 10);
            print_double(1.5 * 4.0 - 2.0);
            return 0;
        }
        """
        assert outputs(src, options) == [
            ("i", 42), ("i", 14), ("i", 2), ("i", 1024), ("f", 4.0)]

    def test_loops_and_arrays(self, options):
        src = """
        int n = 50;
        int a[50];
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < n; i++) { a[i] = i * i; }
            for (i = 0; i < n; i++) { total += a[i]; }
            print_int(total);
            return 0;
        }
        """
        assert outputs(src, options) == [
            ("i", sum(i * i for i in range(50)))]

    def test_double_stencil(self, options):
        src = """
        double u[64];
        double v[64];
        int main() {
            int i;
            for (i = 0; i < 64; i++) { u[i] = 0.25 * i; }
            for (i = 1; i < 63; i++) {
                v[i] = 0.5 * (u[i - 1] + u[i + 1]);
            }
            print_double(v[10]);
            print_double(v[62]);
            return 0;
        }
        """
        want10 = 0.5 * (0.25 * 9 + 0.25 * 11)
        want62 = 0.5 * (0.25 * 61 + 0.25 * 63)
        got = outputs(src, options)
        assert got[0] == ("f", pytest.approx(want10))
        assert got[1] == ("f", pytest.approx(want62))

    def test_functions_and_recursion(self, options):
        src = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        double average(double x, double y) { return (x + y) / 2.0; }
        int main() {
            print_int(fib(12));
            print_double(average(3.0, 5.0));
            return 0;
        }
        """
        assert outputs(src, options) == [("i", 144), ("f", 4.0)]

    def test_control_flow(self, options):
        src = """
        int main() {
            int i;
            int hits = 0;
            for (i = 0; i < 20; i++) {
                if (i % 3 == 0 && i % 2 == 0) { hits += 1; }
                if (i == 15) { break; }
            }
            print_int(hits);
            int j = 0;
            while (j < 5) { j++; }
            print_int(j);
            return 0;
        }
        """
        # multiples of 6 in 0..15: 0, 6, 12 -> 3 hits
        assert outputs(src, options) == [("i", 3), ("i", 5)]

    def test_library_calls(self, options):
        src = """
        int main() {
            print_double(sqrt(81.0));
            print_double(fabs(0.0 - 2.5));
            srand(7);
            int r = rand();
            print_int(r - r);
            return 0;
        }
        """
        assert outputs(src, options) == [("f", 9.0), ("f", 2.5), ("i", 0)]

    def test_pointers_and_malloc(self, options):
        src = """
        int main() {
            double* p = malloc(160);
            int i;
            for (i = 0; i < 20; i++) { p[i] = i * 1.5; }
            double total = 0.0;
            for (i = 0; i < 20; i++) { total += p[i]; }
            print_double(total);
            return 0;
        }
        """
        assert outputs(src, options) == [
            ("f", pytest.approx(sum(i * 1.5 for i in range(20))))]

    def test_read_int_inputs(self, options):
        src = """
        int main() {
            int a = read_int();
            int b = read_int();
            print_int(a + b);
            return 0;
        }
        """
        assert outputs(src, options, inputs=[30, 12]) == [("i", 42)]

    def test_exit_code(self, options):
        result = run("int main() { return 9; }", options)
        assert result.exit_code == 9

    def test_global_initialisers(self, options):
        src = """
        int table[6] = {5, 4, 3};
        double d = 2.5;
        int main() {
            print_int(table[0] + table[2] + table[5]);
            print_double(d);
            return 0;
        }
        """
        assert outputs(src, options) == [("i", 8), ("f", 2.5)]


class TestOptimisationBehaviour:
    def test_all_levels_agree(self):
        src = """
        int n = 200;
        double a[200];
        double b[200];
        int main() {
            int i;
            for (i = 0; i < n; i++) { b[i] = 0.125 * i; }
            for (i = 0; i < n; i++) { a[i] = b[i] * 3.0 + 1.0; }
            double s = 0.0;
            for (i = 0; i < n; i++) { s += a[i]; }
            print_double(s);
            return 0;
        }
        """
        results = [outputs(src, options) for options in ALL_OPTIONS]
        assert all(r == results[0] for r in results[1:])

    def test_o3_uses_packed_instructions(self):
        from repro.analysis.disasm import disassemble
        from repro.isa.instructions import PACKED_LANES

        src = """
        int n = 64;
        double a[64];
        int main() {
            int i;
            for (i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
            return 0;
        }
        """
        scalar = compile_source(src, CompileOptions(opt_level=2))
        vector = compile_source(src, CompileOptions(opt_level=3))
        avx = compile_source(src, CompileOptions(opt_level=3, mavx=True))

        def packed_lanes(image):
            dis = disassemble(image)
            return {PACKED_LANES[i.opcode]
                    for i in dis.instructions.values()
                    if i.opcode in PACKED_LANES}

        assert packed_lanes(scalar) == set()
        assert packed_lanes(vector) == {2}
        assert packed_lanes(avx) == {4}

    def test_o3_executes_fewer_loop_instructions(self):
        src = """
        int n = 400;
        double a[400];
        int main() {
            int i;
            for (i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
            print_double(a[399]);
            return 0;
        }
        """
        o2 = run(src, CompileOptions(opt_level=2))
        o3 = run(src, CompileOptions(opt_level=3))
        assert o3.outputs == o2.outputs
        assert o3.instructions < o2.instructions
        assert o3.cycles < o2.cycles

    def test_icc_unrolls_more(self):
        src = """
        int n = 100;
        int a[100];
        int main() {
            int i;
            int s = 0;
            for (i = 0; i < n; i++) { a[i] = 3 * i; }
            for (i = 0; i < n; i++) { s += a[i]; }
            print_int(s);
            return 0;
        }
        """
        gcc = compile_source(src, CompileOptions(opt_level=3))
        icc = compile_source(src, CompileOptions(opt_level=3,
                                                 personality="icc"))
        gcc_run = run_native(load(gcc))
        icc_run = run_native(load(icc))
        assert gcc_run.outputs == icc_run.outputs
        # More aggressive unrolling -> fewer dynamic branch instructions.
        assert icc_run.instructions < gcc_run.instructions

    def test_comment_records_options_but_is_stripped_metadata(self):
        image = compile_source("int main() { return 0; }",
                               CompileOptions(opt_level=3, mavx=True))
        assert "jcc-gcc" in image.comment
        assert "-mavx" in image.comment
        assert image.stripped


class TestAutoParallelisation:
    SRC = """
    int n = 600;
    double a[600];
    double b[600];
    int main() {
        int i;
        for (i = 0; i < n; i++) { b[i] = 0.5 * i; }
        for (i = 0; i < n; i++) { a[i] = b[i] * 2.0 + 1.0; }
        double s = 0.0;
        for (i = 0; i < n; i++) { s += a[i]; }
        print_double(s);
        return 0;
    }
    """

    def test_parallel_preserves_semantics(self):
        plain = outputs(self.SRC, CompileOptions(opt_level=3))
        parallel = outputs(self.SRC, CompileOptions(opt_level=3,
                                                    parallel=True))
        assert plain == parallel

    def test_parallel_is_faster(self):
        plain = run(self.SRC, CompileOptions(opt_level=3))
        parallel = run(self.SRC, CompileOptions(opt_level=3, parallel=True,
                                                parallel_threads=8))
        assert parallel.cycles < plain.cycles

    def test_reduction_loop_not_parallelised(self):
        """The conservative baseline must leave the sum loop alone: only
        the two independent fill loops become __jomp_parallel_for calls."""
        image = compile_source(self.SRC, CompileOptions(opt_level=2,
                                                        parallel=True))
        # Two parallelised loops -> two outlined bodies in the binary.
        from repro.analysis.disasm import disassemble

        dis = disassemble(image)
        jomp_calls = [a for a, name in dis.external_call_sites.items()
                      if name == "__jomp_parallel_for"]
        assert len(jomp_calls) == 2
