"""Unit tests for the linear-scan register allocator."""

import pytest

from repro.isa.instructions import Instruction, Opcode as O
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import R
from repro.jcc.codegen import VREG_BASE, FunctionCode
from repro.jcc.regalloc import (
    CALLEE_SAVED_POOL,
    FLOAT_POOL,
    INT_POOL_CALLEE,
    INT_POOL_CALLER,
    allocate,
)


def vi(n):  # int virtual register n
    return VREG_BASE + 2 * n


def vf(n):  # float virtual register n
    return VREG_BASE + 2 * n + 1


def code(stream, n_vregs=200, reserved=0):
    return FunctionCode(name="f", stream=stream, n_vregs=n_vregs,
                        reserved_frame_words=reserved)


def physical_ids(allocation):
    regs = set()
    for kind, ins in allocation.stream:
        if kind != "ins":
            continue
        for op in ins.operands:
            if isinstance(op, Reg):
                regs.add(op.id)
            elif isinstance(op, Mem):
                if op.base is not None:
                    regs.add(op.base)
                if op.index is not None:
                    regs.add(op.index)
    return regs


class TestBasics:
    def test_all_vregs_eliminated(self):
        stream = [
            ("ins", Instruction(O.MOV, (Reg(vi(0)), Imm(1)))),
            ("ins", Instruction(O.ADD, (Reg(vi(0)), Imm(2)))),
            ("ins", Instruction(O.MOV, (Reg(R.rax), Reg(vi(0))))),
            ("ins", Instruction(O.RET)),
        ]
        allocation = allocate(code(stream))
        assert all(r < VREG_BASE for r in physical_ids(allocation))

    def test_disjoint_lifetimes_share_registers(self):
        stream = []
        for k in range(12):  # more vregs than the int pool holds
            stream.append(("ins", Instruction(O.MOV, (Reg(vi(k)), Imm(k)))))
            stream.append(("ins", Instruction(
                O.MOV, (Reg(R.rax), Reg(vi(k))))))
        stream.append(("ins", Instruction(O.RET)))
        allocation = allocate(code(stream))
        assert allocation.frame_words == 0  # no spills needed

    def test_mem_operand_vregs_rewritten(self):
        stream = [
            ("ins", Instruction(O.MOV, (Reg(vi(0)), Imm(0x1000)))),
            ("ins", Instruction(O.MOV, (Reg(vi(1)), Imm(2)))),
            ("ins", Instruction(O.MOV, (Reg(vi(2)),
                                        Mem(base=vi(0), index=vi(1),
                                            scale=8)))),
            ("ins", Instruction(O.RET)),
        ]
        allocation = allocate(code(stream))
        assert all(r < VREG_BASE for r in physical_ids(allocation))


class TestCallConstraints:
    def test_live_across_call_gets_callee_saved(self):
        stream = [
            ("ins", Instruction(O.MOV, (Reg(vi(0)), Imm(7)))),
            ("ins", Instruction(O.CALL, (Imm(0x400000),))),
            ("ins", Instruction(O.MOV, (Reg(R.rax), Reg(vi(0))))),
            ("ins", Instruction(O.RET)),
        ]
        allocation = allocate(code(stream))
        used = physical_ids(allocation) - {R.rax}
        assert used <= CALLEE_SAVED_POOL
        assert allocation.used_callee_saved

    def test_float_across_call_spills(self):
        stream = [
            ("ins", Instruction(O.MOVSD, (Reg(vf(0)), Reg(R.xmm0)))),
            ("ins", Instruction(O.CALL, (Imm(0x400000),))),
            ("ins", Instruction(O.MOVSD, (Reg(R.xmm0), Reg(vf(0))))),
            ("ins", Instruction(O.RET)),
        ]
        allocation = allocate(code(stream))
        assert allocation.frame_words >= 1  # no callee-saved xmm: spill


class TestSpilling:
    def _pressure_stream(self, n_live):
        stream = []
        for k in range(n_live):
            stream.append(("ins", Instruction(O.MOV, (Reg(vi(k)),
                                                      Imm(k)))))
        # Keep them all live by using each afterwards.
        for k in range(n_live):
            stream.append(("ins", Instruction(O.ADD, (Reg(R.rax),
                                                      Reg(vi(k))))))
        stream.append(("ins", Instruction(O.RET)))
        return stream

    def test_high_pressure_spills(self):
        allocation = allocate(code(self._pressure_stream(10)))
        assert allocation.frame_words > 0
        # Spill code shuttles through scratch registers only.
        assert all(r < VREG_BASE for r in physical_ids(allocation))

    def test_spill_slots_stack_above_reserved(self):
        allocation = allocate(code(self._pressure_stream(10), reserved=4))
        spill_mems = [op for kind, ins in allocation.stream
                      if kind == "ins" for op in ins.operands
                      if isinstance(op, Mem) and op.base == R.rsp]
        assert spill_mems
        assert all(m.disp >= 4 * 8 for m in spill_mems)

    def test_loop_extends_intervals(self):
        """A vreg used around a back edge must stay allocated in the loop."""
        stream = [
            ("ins", Instruction(O.MOV, (Reg(vi(0)), Imm(0)))),
            ("label", "loop"),
            ("ins", Instruction(O.ADD, (Reg(vi(0)), Imm(1)))),
            ("ins", Instruction(O.MOV, (Reg(vi(1)), Imm(5)))),
            ("ins", Instruction(O.CMP, (Reg(vi(0)), Reg(vi(1))))),
            ("ins", Instruction(O.JL, (Label("loop"),))),
            ("ins", Instruction(O.MOV, (Reg(R.rax), Reg(vi(0))))),
            ("ins", Instruction(O.RET)),
        ]
        allocation = allocate(code(stream))
        # vi(0) and vi(1) must not share a physical register: vi(0) is
        # live across vi(1)'s definition inside the loop.
        assignments = {}
        for kind, ins in allocation.stream:
            if kind == "ins" and ins.opcode is O.CMP:
                a, b = ins.operands
                assert a != b
