"""Unit tests for the AST-level optimisation passes."""

import pytest

from repro.jcc import ast
from repro.jcc.optimizer import (
    fold_expr,
    match_countable,
    try_autopar,
    try_multiversion,
    try_unroll,
    try_vectorize,
)
from repro.jcc.parser import parse
from repro.jcc.sema import analyse


def program(source):
    return analyse(parse(source))


def first_loop(fn):
    for statement in fn.body:
        if isinstance(statement, ast.For):
            return statement
    raise AssertionError("no for loop")


class TestMatchCountable:
    def test_canonical_form(self):
        prog = program("""
            int main() { int i; for (i = 2; i < 10; i++) { } return 0; }
        """)
        loop = first_loop(prog.function("main"))
        match = match_countable(loop)
        assert match is not None
        assert match.iter_name == "i"
        assert match.start.value == 2
        assert not match.inclusive

    def test_decl_init_form(self):
        prog = program("""
            int main() { for (int i = 0; i < 4; i += 1) { } return 0; }
        """)
        assert match_countable(first_loop(prog.function("main"))) is not None

    def test_non_unit_step_rejected(self):
        prog = program("""
            int main() { int i; for (i = 0; i < 10; i += 2) { } return 0; }
        """)
        assert match_countable(first_loop(prog.function("main"))) is None

    def test_downward_rejected(self):
        prog = program("""
            int main() { int i; for (i = 10; i > 0; i -= 1) { } return 0; }
        """)
        assert match_countable(first_loop(prog.function("main"))) is None


class TestFold:
    def test_int_folds(self):
        expr = fold_expr(parse_expr("2 * 3 + 10 / 2"))
        assert isinstance(expr, ast.IntLit)
        assert expr.value == 11

    def test_float_folds(self):
        expr = fold_expr(parse_expr("1.5 * 2.0", decl_type="double"))
        assert isinstance(expr, ast.FloatLit)
        assert expr.value == 3.0

    def test_division_by_zero_not_folded(self):
        expr = fold_expr(parse_expr("1 / 0"))
        assert isinstance(expr, ast.Binary)

    def test_shift_folds(self):
        assert fold_expr(parse_expr("1 << 4")).value == 16


def parse_expr(text, decl_type="int"):
    prog = program(f"int main() {{ {decl_type} x = {text}; return 0; }}")
    return prog.function("main").body[0].init


class TestUnroll:
    SRC = """
    int a[64];
    int main() {
        int i;
        for (i = 0; i < 64; i++) { a[i] = i * 3; }
        return 0;
    }
    """

    def test_unroll_structure(self):
        prog = program(self.SRC)
        loop = first_loop(prog.function("main"))
        result = try_unroll(loop, 2)
        assert result is not None
        main, tail = result
        assert len(main.body) == 2 * len(loop.body)
        assert tail.init is None  # continues from the main loop's iterator

    def test_factor_one_rejected(self):
        prog = program(self.SRC)
        assert try_unroll(first_loop(prog.function("main")), 1) is None

    def test_loop_with_break_rejected(self):
        prog = program("""
        int a[8];
        int main() {
            int i;
            for (i = 0; i < 8; i++) { if (i == 3) { break; } a[i] = i; }
            return 0;
        }
        """)
        assert try_unroll(first_loop(prog.function("main")), 2) is None


class TestVectorize:
    def test_simple_double_loop(self):
        prog = program("""
        double a[64];
        double b[64];
        int main() {
            int i;
            for (i = 0; i < 64; i++) { a[i] = b[i] * 2.0 + 1.0; }
            return 0;
        }
        """)
        result = try_vectorize(first_loop(prog.function("main")), 2)
        assert result is not None
        init, vec, tail = result
        assert isinstance(vec, ast.VecFor)
        assert vec.lanes == 2

    def test_int_loop_rejected(self):
        prog = program("""
        int a[64];
        int main() {
            int i;
            for (i = 0; i < 64; i++) { a[i] = i; }
            return 0;
        }
        """)
        assert try_vectorize(first_loop(prog.function("main")), 2) is None

    def test_offset_index_rejected(self):
        prog = program("""
        double a[64];
        int main() {
            int i;
            for (i = 1; i < 64; i++) { a[i] = a[i - 1]; }
            return 0;
        }
        """)
        assert try_vectorize(first_loop(prog.function("main")), 2) is None

    def test_no_vectorize_mark_respected(self):
        prog = program("""
        double a[64];
        int main() {
            int i;
            for (i = 0; i < 64; i++) { a[i] = 1.0; }
            return 0;
        }
        """)
        loop = first_loop(prog.function("main"))
        loop.no_vectorize = True
        assert try_vectorize(loop, 2) is None


class TestAutopar:
    def _loop(self, body, aggressive=False, globals_="double a[64];\n"
              "double b[64];"):
        prog = program(f"""
        {globals_}
        int main() {{
            int i;
            for (i = 0; i < 64; i++) {{ {body} }}
            return 0;
        }}
        """)
        fn = prog.function("main")
        return prog, fn, first_loop(fn)

    def test_independent_loop_outlined(self):
        prog, fn, loop = self._loop("a[i] = b[i] * 2.0;")
        result = try_autopar(prog, fn, loop, 8)
        assert result is not None
        (call_stmt,) = result
        assert isinstance(call_stmt, ast.ExprStmt)
        assert call_stmt.expr.func == "__jomp_parallel_for"
        # The outlined body landed in the program.
        assert any(f.name.startswith("__par_body") for f in prog.functions)

    def test_recurrence_rejected_in_aggressive_mode(self):
        prog, fn, loop = self._loop("a[i] = a[i - 1] * 0.5;")
        assert try_autopar(prog, fn, loop, 8, aggressive=True) is None

    def test_offset_read_of_other_array_allowed_aggressively(self):
        prog, fn, loop = self._loop("a[i] = b[i - 1] * 0.5;")
        assert try_autopar(prog, fn, loop, 8, aggressive=False) is None
        assert try_autopar(prog, fn, loop, 8, aggressive=True) is not None

    def test_locals_only_in_aggressive_mode(self):
        body = "double t = b[i] * 2.0; a[i] = t + 1.0;"
        prog, fn, loop = self._loop(body)
        assert try_autopar(prog, fn, loop, 8, aggressive=False) is None
        prog, fn, loop = self._loop(body)
        assert try_autopar(prog, fn, loop, 8, aggressive=True) is not None

    def test_call_in_body_rejected(self):
        prog, fn, loop = self._loop("a[i] = sqrt(b[i]);")
        assert try_autopar(prog, fn, loop, 8, aggressive=True) is None


class TestMultiversion:
    SRC = """
    int n = 64;
    int main() {
        double* p = malloc(512);
        double* q = malloc(512);
        int i;
        for (i = 0; i < n; i++) { p[i] = q[i] * 2.0; }
        print_double(p[10]);
        return 0;
    }
    """

    def test_duplicates_behind_overlap_check(self):
        prog = program(self.SRC)
        fn = prog.function("main")
        loop = first_loop(fn)
        result = try_multiversion(fn, loop)
        assert result is not None
        (guard,) = result
        assert isinstance(guard, ast.If)
        fast = guard.then_body[0]
        slow = guard.else_body[0]
        assert isinstance(fast, ast.For) and isinstance(slow, ast.For)
        assert getattr(slow, "no_vectorize", False)
        assert not getattr(fast, "no_vectorize", False)

    def test_global_array_loop_not_multiversioned(self):
        prog = program("""
        double a[64];
        double b[64];
        int main() {
            int i;
            for (i = 0; i < 64; i++) { a[i] = b[i]; }
            return 0;
        }
        """)
        fn = prog.function("main")
        assert try_multiversion(fn, first_loop(fn)) is None

    def test_executes_identically_across_personalities(self):
        from repro.dbm.executor import run_native
        from repro.jbin.loader import load
        from repro.jcc import CompileOptions, compile_source

        gcc = run_native(load(compile_source(
            self.SRC, CompileOptions(opt_level=3, personality="gcc"))))
        icc = run_native(load(compile_source(
            self.SRC, CompileOptions(opt_level=3, personality="icc"))))
        assert gcc.outputs == icc.outputs
