"""Lexer / parser / sema tests for JC."""

import pytest

from repro.jcc import ast
from repro.jcc.lexer import LexError, tokenize
from repro.jcc.parser import ParseError, parse
from repro.jcc.sema import SemaError, analyse


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("int x = 42;")
        assert [(t.kind, t.text) for t in tokens] == [
            ("keyword", "int"), ("ident", "x"), ("op", "="),
            ("int_lit", "42"), ("op", ";"), ("eof", "")]

    def test_float_and_hex_literals(self):
        kinds = [t.kind for t in tokenize("1.5 0x10 2e3 7")][:-1]
        assert kinds == ["float_lit", "int_lit", "float_lit", "int_lit"]

    def test_comments_ignored(self):
        tokens = tokenize("a // line\n/* block\nstill */ b")
        assert [t.text for t in tokens][:-1] == ["a", "b"]

    def test_maximal_munch(self):
        texts = [t.text for t in tokenize("a<=b==c&&d")][:-1]
        assert texts == ["a", "<=", "b", "==", "c", "&&", "d"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens][:-1] == [1, 2, 4]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestParser:
    def test_function_and_globals(self):
        program = parse("""
            int n = 5;
            double a[10] = {1.0, 2.0};
            int main() { return n; }
        """)
        assert len(program.globals) == 2
        assert program.globals[0].name == "n"
        assert program.globals[1].size == 10
        assert program.globals[1].init == [1.0, 2.0]
        assert program.function("main").return_type == "int"

    def test_precedence(self):
        program = parse("int main() { return 1 + 2 * 3; }")
        ret = program.function("main").body[0]
        assert isinstance(ret.value, ast.Binary)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_for_loop_shape(self):
        program = parse("""
            int main() {
                int i;
                for (i = 0; i < 10; i++) { }
                return 0;
            }
        """)
        loop = program.function("main").body[1]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Assign)
        assert loop.step.op == "+="

    def test_if_else_chain(self):
        program = parse("""
            int main() {
                if (1 < 2) { return 1; } else if (2 < 3) { return 2; }
                else { return 3; }
            }
        """)
        stmt = program.function("main").body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)

    def test_extern_recorded(self):
        program = parse("extern double pow(double, double);\nint main() { return 0; }")
        assert program.externs == ["pow"]

    def test_syntax_error(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 + ; }")


class TestSema:
    def check(self, source):
        return analyse(parse(source))

    def test_int_double_coercion(self):
        program = self.check("""
            int main() { double x = 1; int y = 2.5; return y; }
        """)
        body = program.function("main").body
        assert isinstance(body[0].init, ast.Cast)
        assert body[0].init.target == "double"
        assert isinstance(body[1].init, ast.Cast)

    def test_array_decay_and_index_type(self):
        program = self.check("""
            double a[4];
            int main() { double x = a[1]; return 0; }
        """)
        init = program.function("main").body[0].init
        assert init.type == "double"
        assert init.base.type == "double*"

    def test_malloc_assignable_to_pointers(self):
        self.check("int main() { double* p = malloc(80); p[0] = 1.0; return 0; }")

    def test_undefined_name(self):
        with pytest.raises(SemaError):
            self.check("int main() { return missing; }")

    def test_wrong_arity(self):
        with pytest.raises(SemaError):
            self.check("int main() { print_int(1, 2); return 0; }")

    def test_no_main(self):
        with pytest.raises(SemaError):
            self.check("int f() { return 0; }")

    def test_mod_requires_int(self):
        with pytest.raises(SemaError):
            self.check("int main() { double x = 1.0; x %= 2.0; return 0; }")

    def test_pointer_arithmetic_rejected_in_source(self):
        with pytest.raises(SemaError):
            self.check("double a[4];\nint main() { double* p = a + 1; return 0; }")
