"""Execution tests for the remaining JC language surface."""

import pytest

from repro.dbm.executor import run_native
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source


def outputs(source, opt_level=2, inputs=None):
    image = compile_source(source, CompileOptions(opt_level=opt_level))
    return run_native(load(image, inputs=inputs)).outputs


class TestControl:
    def test_continue(self):
        src = """
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 10; i++) {
                if (i % 2 == 0) { continue; }
                total += i;
            }
            print_int(total);
            return 0;
        }
        """
        assert outputs(src) == [("i", 1 + 3 + 5 + 7 + 9)]

    def test_nested_break_only_exits_inner(self):
        src = """
        int main() {
            int i; int j; int count = 0;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 10; j++) {
                    if (j == 2) { break; }
                    count += 1;
                }
            }
            print_int(count);
            return 0;
        }
        """
        assert outputs(src) == [("i", 8)]

    def test_while_with_complex_condition(self):
        src = """
        int main() {
            int x = 0; int y = 100;
            while (x < 10 && y > 50) {
                x += 1;
                y -= 7;
            }
            print_int(x); print_int(y);
            return 0;
        }
        """
        # y: 100,93,86,79,72,65,58,51 -> stops when y=51>50 ok, then 44
        assert outputs(src) == [("i", 8), ("i", 44)]


class TestExpressions:
    def test_logical_ops_as_values(self):
        src = """
        int main() {
            int a = 5; int b = 0;
            print_int(a && 3);
            print_int(b || 0);
            print_int(!(a > 2));
            print_int(!(b));
            return 0;
        }
        """
        assert outputs(src) == [("i", 1), ("i", 0), ("i", 0), ("i", 1)]

    def test_comparison_values(self):
        src = """
        int main() {
            double x = 2.5;
            print_int(x > 2.0);
            print_int(x == 2.5);
            print_int(3 != 3);
            return 0;
        }
        """
        assert outputs(src) == [("i", 1), ("i", 1), ("i", 0)]

    def test_compound_assignment_operators(self):
        src = """
        int main() {
            int x = 100;
            x += 5; x -= 3; x *= 2; x /= 4; x %= 13;
            print_int(x);
            double d = 8.0;
            d /= 2.0; d *= 3.0;
            print_double(d);
            return 0;
        }
        """
        assert outputs(src) == [("i", (100 + 5 - 3) * 2 // 4 % 13),
                                ("f", 12.0)]

    def test_bitwise_operators(self):
        src = """
        int main() {
            print_int(12 & 10);
            print_int(12 | 3);
            print_int(12 ^ 10);
            print_int((1 << 5) >> 2);
            return 0;
        }
        """
        assert outputs(src) == [("i", 8), ("i", 15), ("i", 6), ("i", 8)]

    def test_unary_minus_chains(self):
        src = """
        int main() {
            int x = 5;
            print_int(-x);
            print_int(-(-x));
            print_double(-(1.5 - 3.0));
            return 0;
        }
        """
        assert outputs(src) == [("i", -5), ("i", 5), ("f", 1.5)]


class TestFunctionsAndPointers:
    def test_pointer_parameters(self):
        src = """
        double scale_sum(double* xs, int count, double factor) {
            int k;
            double total = 0.0;
            for (k = 0; k < count; k++) {
                xs[k] = xs[k] * factor;
                total += xs[k];
            }
            return total;
        }
        double data[8];
        int main() {
            int i;
            for (i = 0; i < 8; i++) { data[i] = 1.0 * i; }
            print_double(scale_sum(data, 8, 0.5));
            print_double(data[6]);
            return 0;
        }
        """
        got = outputs(src)
        assert got[0] == ("f", pytest.approx(sum(0.5 * i for i in range(8))))
        assert got[1] == ("f", 3.0)

    def test_many_arguments(self):
        src = """
        int combine(int a, int b, int c, int d, int e, int f) {
            return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
        }
        int main() {
            print_int(combine(1, 2, 3, 4, 5, 6));
            return 0;
        }
        """
        assert outputs(src) == [("i", 1 + 4 + 9 + 16 + 25 + 36)]

    def test_mixed_int_float_arguments(self):
        src = """
        double mix(int a, double x, int b, double y) {
            return a * x + b * y;
        }
        int main() {
            print_double(mix(2, 1.5, 3, 0.5));
            return 0;
        }
        """
        assert outputs(src) == [("f", pytest.approx(4.5))]

    def test_void_function(self):
        src = """
        int counter = 0;
        void bump(int amount) { counter += amount; }
        int main() {
            bump(3); bump(4);
            print_int(counter);
            return 0;
        }
        """
        assert outputs(src) == [("i", 7)]


class TestO0Fidelity:
    @pytest.mark.parametrize("opt_level", [0, 2, 3])
    def test_memory_locals_agree(self, opt_level):
        src = """
        int main() {
            int i;
            int fib0 = 0; int fib1 = 1;
            for (i = 0; i < 20; i++) {
                int next = fib0 + fib1;
                fib0 = fib1;
                fib1 = next;
            }
            print_int(fib1);
            return 0;
        }
        """
        assert outputs(src, opt_level=opt_level) == [("i", 10946)]
