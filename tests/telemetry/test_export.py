"""Exporter tests: Chrome trace shape, metrics, snapshots, schema."""

import json
import os

from repro.telemetry import aggregate, export
from repro.telemetry.core import Recorder
from repro.telemetry.schema import validate_file

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                           "schemas", "trace_event.schema.json")


def _merged_two_processes():
    """A merged dump with two fake processes and overlapping counters."""
    a = Recorder(label="figures")
    with a.span("exec.native", cat="exec", lane="native mg"):
        pass
    a.count("jit.blocks", 3)
    b = Recorder(label="worker")
    with b.span("cell.run", cat="cell", lane="run mg janus x8"):
        pass
    b.instant("stm.abort", cat="stm", thread=2)
    b.count("jit.blocks", 4)
    b.gauge("speedup", 1.5)
    dump_b = b.dump()
    dump_b["pid"] = a.pid + 1  # same process in tests: fake a second pid
    return aggregate.merge([a.dump(), dump_b])


class TestChromeTrace:
    def test_metadata_and_events(self):
        trace = export.chrome_trace(_merged_two_processes())
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["tid"]) for e in meta}
        # Every process gets a process_name and a named main lane.
        assert len({pid for _n, pid, _t in names}) == 2
        assert all(any(n == "process_name" and p == pid
                       for n, p, _t in names)
                   for pid in {e["pid"] for e in events})
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        assert trace["meta"] == {"processes": 2, "spans": 2}

    def test_timestamps_shift_to_zero_and_microseconds(self):
        trace = export.chrome_trace(_merged_two_processes())
        timed = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert min(e["ts"] for e in timed) == 0.0
        # monotonic_ns magnitudes would be ~1e12 us if unshifted.
        assert all(e["ts"] < 1e9 for e in timed)

    def test_counters_merge_and_sort(self):
        trace = export.chrome_trace(_merged_two_processes())
        assert trace["metrics"]["counters"]["jit.blocks"] == 7
        keys = list(trace["metrics"]["counters"])
        assert keys == sorted(keys)
        assert trace["metrics"]["gauges"] == {"speedup": 1.5}

    def test_empty_merge(self):
        trace = export.chrome_trace(aggregate.merge([]))
        assert trace["traceEvents"] == []
        assert trace["meta"] == {"processes": 0, "spans": 0}


class TestSchema:
    def test_written_trace_validates(self, tmp_path):
        path = tmp_path / "trace.json"
        export.write_chrome_trace(str(path), _merged_two_processes())
        result = validate_file(str(path), SCHEMA_PATH)
        assert result["meta"]["spans"] == 2

    def test_write_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        returned = export.write_chrome_trace(str(path),
                                             _merged_two_processes())
        assert json.loads(path.read_text()) == returned


class TestAggregatesAndSnapshots:
    def test_span_aggregates(self):
        merged = _merged_two_processes()
        aggregates = export.span_aggregates(merged)
        assert set(aggregates) == {"exec.native", "cell.run"}
        for entry in aggregates.values():
            assert entry["count"] == 1
            assert entry["total_ms"] >= 0
            assert entry["max_ms"] <= entry["total_ms"] + 1e-9

    def test_bench_snapshot(self, tmp_path):
        merged = _merged_two_processes()
        path = tmp_path / "BENCH_telemetry.json"
        payload = export.write_bench_snapshot(str(path), merged,
                                              name="fig7-trace")
        assert payload["bench"] == "fig7-trace"
        assert payload["processes"] == 2
        assert payload["metrics"]["counters"]["jit.blocks"] == 7
        assert json.loads(path.read_text()) == payload

    def test_metrics_writer(self, tmp_path):
        path = tmp_path / "metrics.json"
        payload = export.write_metrics(str(path), _merged_two_processes())
        assert json.loads(path.read_text()) == payload
        assert payload["counters"]["jit.blocks"] == 7
