"""Cross-process dump aggregation tests (flush/load/merge/collect)."""

import json
import os

from repro.telemetry import aggregate
from repro.telemetry.core import Recorder


def _recorder_with_span(label="worker", counter=("jit.blocks", 2)):
    recorder = Recorder(label=label)
    with recorder.span("cell.native", cat="cell", lane="native mg"):
        pass
    recorder.count(*counter)
    return recorder


class TestFlushAndLoad:
    def test_flush_roundtrip(self, tmp_path):
        recorder = _recorder_with_span()
        path = aggregate.flush(recorder, str(tmp_path))
        assert os.path.basename(path).startswith("dump-")
        (dump,) = aggregate.load_dumps(str(tmp_path))
        assert dump == recorder.dump()

    def test_reflush_overwrites_same_file(self, tmp_path):
        recorder = _recorder_with_span()
        first = aggregate.flush(recorder, str(tmp_path))
        recorder.count("jit.blocks", 5)
        second = aggregate.flush(recorder, str(tmp_path))
        assert first == second
        (dump,) = aggregate.load_dumps(str(tmp_path))
        assert dump["counters"]["jit.blocks"] == 7

    def test_torn_and_foreign_files_are_skipped(self, tmp_path):
        aggregate.flush(_recorder_with_span(), str(tmp_path))
        (tmp_path / "dump-999-torn.json").write_text('{"pid": 999, "ev')
        (tmp_path / "dump-998-foreign.json").write_text('{"other": 1}')
        (tmp_path / "unrelated.txt").write_text("hello")
        assert len(aggregate.load_dumps(str(tmp_path))) == 1

    def test_missing_directory(self, tmp_path):
        assert aggregate.load_dumps(str(tmp_path / "absent")) == []
        assert aggregate.clear(str(tmp_path / "absent")) == 0

    def test_clear(self, tmp_path):
        aggregate.flush(_recorder_with_span(), str(tmp_path))
        assert aggregate.clear(str(tmp_path)) == 1
        assert aggregate.load_dumps(str(tmp_path)) == []


class TestMerge:
    def test_counters_sum_and_gauges_last_win(self):
        a = _recorder_with_span().dump()
        b = _recorder_with_span().dump()
        a["gauges"]["speedup"] = 1.0
        b["gauges"]["speedup"] = 2.0
        b["pid"] = a["pid"] + 1
        merged = aggregate.merge([a, b])
        assert merged["counters"]["jit.blocks"] == 4
        assert merged["gauges"]["speedup"] == 2.0
        assert [p["pid"] for p in merged["processes"]] \
            == sorted(p["pid"] for p in merged["processes"])

    def test_empty_dumps_dropped(self):
        empty = Recorder(label="idle").dump()
        merged = aggregate.merge([empty, _recorder_with_span().dump()])
        assert len(merged["processes"]) == 1

    def test_merge_preserves_events_per_process(self):
        a = _recorder_with_span().dump()
        b = _recorder_with_span().dump()
        b["pid"] = a["pid"] + 1
        merged = aggregate.merge([a, b])
        for process, dump in zip(merged["processes"],
                                 sorted([a, b], key=lambda d: d["pid"])):
            assert process["events"] == dump["events"]
            assert process["lanes"] == dump["lanes"]


class TestCollect:
    def test_collect_excludes_own_pid_dumps(self, tmp_path):
        parent = _recorder_with_span(label="figures")
        # The parent's own on-disk dump (same pid) must not double-count.
        aggregate.flush(parent, str(tmp_path))
        worker = _recorder_with_span(label="worker").dump()
        worker["pid"] = os.getpid() + 1
        path = tmp_path / f"dump-{worker['pid']}-abc.json"
        path.write_text(json.dumps(worker))
        merged = aggregate.collect(parent, str(tmp_path))
        assert len(merged["processes"]) == 2
        assert merged["counters"]["jit.blocks"] == 4

    def test_collect_without_directory(self):
        parent = _recorder_with_span(label="figures")
        merged = aggregate.collect(parent, None)
        assert len(merged["processes"]) == 1
