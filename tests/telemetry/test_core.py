"""Unit tests for the telemetry core: registry, views, recorder, spans."""

import pytest

from repro.telemetry.core import (
    MetricRegistry,
    NullRecorder,
    Recorder,
    RegistryView,
    disable,
    enable,
    get_recorder,
    lane_label,
    set_recorder,
)


@pytest.fixture(autouse=True)
def _restore_recorder():
    """Every test leaves the process-wide recorder disabled."""
    yield
    disable()


class TestMetricRegistry:
    def test_inc_and_get(self):
        registry = MetricRegistry()
        registry.inc("jit.blocks", 3)
        registry.inc("jit.blocks")
        assert registry.get("jit.blocks") == 4
        assert registry.get("missing") == 0
        assert registry.get("missing", -1) == -1

    def test_namespace_strips_prefix(self):
        registry = MetricRegistry()
        registry.inc("stm.aborts", 2)
        registry.inc("stm.reads", 7)
        registry.inc("jit.blocks", 1)
        assert registry.namespace("stm") == {"aborts": 2, "reads": 7}

    def test_as_dict_sorted(self):
        registry = MetricRegistry()
        registry.inc("b", 1)
        registry.inc("a", 1)
        assert list(registry.as_dict()) == ["a", "b"]


class _View(RegistryView):
    _NAMESPACE = "demo"
    _FIELDS = ("zulu", "alpha")


class TestRegistryView:
    def test_attributes_are_registry_backed(self):
        view = _View()
        assert view.zulu == 0
        view.zulu += 5
        view.alpha = 2
        assert view.registry.get("demo.zulu") == 5
        assert view.registry.get("demo.alpha") == 2

    def test_shared_registry(self):
        registry = MetricRegistry()
        a = _View(registry)
        b = _View(registry)
        a.zulu += 1
        assert b.zulu == 1

    def test_as_dict_keeps_declaration_order(self):
        view = _View()
        view.zulu = 3
        assert list(view.as_dict()) == ["zulu", "alpha"]
        assert view.as_dict() == {"zulu": 3, "alpha": 0}

    def test_reset(self):
        view = _View()
        view.zulu = 9
        view.reset()
        assert view.zulu == 0


class TestLaneLabel:
    def test_forms(self):
        assert lane_label("native", "470.lbm") == "native 470.lbm"
        assert lane_label("run", "470.lbm", "JANUS", 8) \
            == "run 470.lbm janus x8"
        assert lane_label("training", "mg", threads=0) == "training mg"


class TestNullRecorder:
    def test_default_recorder_is_disabled(self):
        assert get_recorder().enabled is False

    def test_span_is_shared_noop(self):
        recorder = NullRecorder()
        span = recorder.span("x", cat="c")
        assert span is recorder.span("y")
        with span as inner:
            inner.set(a=1)
        assert recorder.dump()["events"] == []


class TestRecorder:
    def test_span_records_event(self):
        recorder = Recorder(label="t")
        with recorder.span("work", cat="test", n=3) as span:
            span.set(extra=True)
        (event,) = recorder.events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["dur"] >= 0
        assert event["args"] == {"n": 3, "extra": True}

    def test_nested_spans_inherit_lane(self):
        recorder = Recorder()
        with recorder.span("outer", lane="native mg"):
            with recorder.span("inner"):
                pass
        inner, outer = sorted(recorder.events, key=lambda e: e["name"])
        assert outer["tid"] == recorder.lane("native mg")
        assert inner["tid"] == outer["tid"]
        # Lane restored after the with block.
        assert recorder._tid == 0

    def test_span_records_error(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("nope")
        (event,) = recorder.events
        assert event["args"]["error"] == "ValueError"

    def test_instant(self):
        recorder = Recorder()
        recorder.instant("tick", cat="test", k=1)
        (event,) = recorder.events
        assert event["ph"] == "i"
        assert event["args"] == {"k": 1}

    def test_counters_only_tier(self):
        recorder = Recorder(record_spans=False)
        with recorder.span("ignored"):
            pass
        recorder.instant("ignored")
        recorder.count("stm.aborts", 2)
        recorder.gauge("speedup", 2.5)
        assert recorder.events == []
        assert recorder.counters == {"stm.aborts": 2}
        assert recorder.gauges == {"speedup": 2.5}

    def test_max_events_drops_are_counted(self):
        recorder = Recorder(max_events=1)
        recorder.instant("a")
        recorder.instant("b")
        recorder.instant("c")
        assert len(recorder.events) == 1
        assert recorder.counters["telemetry.dropped_events"] == 2

    def test_absorb_registry(self):
        recorder = Recorder()
        registry = MetricRegistry()
        registry.inc("jit.blocks", 4)
        recorder.absorb(registry)
        recorder.absorb(registry)
        assert recorder.counters["jit.blocks"] == 8

    def test_dump_shape(self):
        recorder = Recorder(label="worker")
        recorder.lane("native mg")
        with recorder.span("s"):
            pass
        dump = recorder.dump()
        assert set(dump) == {"pid", "label", "lanes", "events",
                             "counters", "gauges"}
        assert dump["label"] == "worker"
        assert dump["lanes"] == {"native mg": 1}
        assert len(dump["events"]) == 1


class TestEnableDisable:
    def test_enable_swaps_process_recorder(self):
        recorder = enable(label="test")
        assert get_recorder() is recorder
        assert recorder.enabled
        disable()
        assert get_recorder().enabled is False

    def test_set_recorder_returns_argument(self):
        null = NullRecorder()
        assert set_recorder(null) is null
