"""The stats-registry migration: legacy stats objects as registry views.

``JITStats``, ``DBMStats`` and ``STMStats`` must keep their old attribute
API while counting into one shared ``MetricRegistry`` under ``jit.*``,
``runtime.*`` and ``stm.*`` — and ``ExecutionResult.stats`` must keep the
legacy unprefixed key layout byte-for-byte.
"""

import pytest

from repro.dbm.jit import JITStats
from repro.dbm.modifier import DBMStats, JanusDBM
from repro.dbm.runtime import ParallelRuntime
from repro.jbin.loader import load
from repro.jcc import CompileOptions, compile_source
from repro.pipeline import Janus, JanusConfig, SelectionMode
from repro.stm.stm import STMStats
from repro.telemetry.core import MetricRegistry

SOURCE = """
int n = 256;
double a[256];
double b[256];

int main() {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i++) { b[i] = 0.25 * i; }
    for (i = 0; i < n; i++) { a[i] = b[i] * 2.0 + 1.0; }
    for (i = 0; i < n; i++) { s += a[i]; }
    print_double(s);
    return 0;
}
"""

LEGACY_DBM_KEYS = [
    "translated_blocks", "translated_instructions", "translation_cycles",
    "worker_translation_cycles", "check_cycles", "checks_passed",
    "checks_failed", "init_finish_cycles", "parallel_cycles",
    "loop_invocations_parallel", "loop_invocations_sequential",
    "loop_finish_marks", "stm_cycles", "false_sharing_cycles",
    "rules_applied",
]

LEGACY_JIT_KEYS = [
    "blocks_translated", "instrumented_blocks", "links_installed",
    "trace_entries", "trace_exits", "trace_budget_bailouts",
    "fallback_instructions",
]

SUPERBLOCK_KEYS = [
    "superblock_formed", "superblock_formation_failures",
    "superblock_entries", "superblock_side_exits", "superblock_deopts",
    "superblock_bailouts",
]


@pytest.fixture(scope="module")
def image():
    return compile_source(SOURCE, CompileOptions(opt_level=3))


class TestNamespaces:
    def test_views_write_namespaced_keys(self):
        registry = MetricRegistry()
        jit = JITStats(registry)
        dbm = DBMStats(registry)
        stm = STMStats(registry)
        jit.blocks_translated += 2
        dbm.rules_applied += 3
        stm.aborts += 1
        assert registry.get("jit.blocks_translated") == 2
        assert registry.get("runtime.rules_applied") == 3
        assert registry.get("stm.aborts") == 1

    def test_fields_initialised_to_zero(self):
        registry = MetricRegistry()
        STMStats(registry)
        assert registry.get("stm.transactions") == 0
        assert "stm.commit_cycles" in registry.counters

    def test_standalone_views_get_private_registries(self):
        a = STMStats()
        b = STMStats()
        a.aborts += 1
        assert b.aborts == 0


class TestJanusDBMSharedRegistry:
    def test_one_registry_across_subsystems(self, image):
        dbm = JanusDBM(load(image))
        runtime = ParallelRuntime(dbm)
        assert dbm.stats.registry is dbm.registry
        assert dbm.interp.jit_stats.registry is dbm.registry
        assert runtime.stm.stats.registry is dbm.registry

    def test_run_counts_into_registry(self, image):
        dbm = JanusDBM(load(image))
        result = dbm.run()
        assert result.exit_code == 0
        assert dbm.registry.get("runtime.translated_blocks") \
            == dbm.stats.translated_blocks > 0
        assert dbm.registry.get("jit.blocks_translated") \
            == dbm.interp.jit_stats.blocks_translated > 0


class TestLegacyStatsLayout:
    def test_dbm_result_stats_keys(self, image):
        result = JanusDBM(load(image)).run()
        assert list(result.stats) \
            == LEGACY_DBM_KEYS + LEGACY_JIT_KEYS + SUPERBLOCK_KEYS

    def test_janus_run_matches_dbm_only_baseline(self, image):
        janus = Janus(image, JanusConfig(n_threads=2))
        result = janus.run(SelectionMode.JANUS)
        assert result.exit_code == 0
        assert set(LEGACY_DBM_KEYS + LEGACY_JIT_KEYS + SUPERBLOCK_KEYS) \
            <= set(result.stats)
        assert result.stats["loop_invocations_parallel"] >= 1

    def test_superblock_counters_namespaced(self, image):
        from repro.dbm.executor import run_native

        result = run_native(load(image))
        assert set(LEGACY_JIT_KEYS + SUPERBLOCK_KEYS) <= set(result.stats)
