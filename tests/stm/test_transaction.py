"""Unit and property tests for the software transactional memory."""

from hypothesis import given, strategies as st

from repro.dbm.machine import ThreadContext
from repro.dbm.memory import Memory
from repro.isa.costs import CostModel
from repro.stm import STMManager, Transaction


def make_memory(contents=None):
    memory = Memory()
    for addr, value in (contents or {}).items():
        memory.write(addr, value)
    return memory


class TestTransaction:
    def test_reads_record_values(self):
        memory = make_memory({0x100: 7})
        tx = Transaction(memory=memory)
        assert tx.read(0x100) == 7
        assert tx.read_log == {0x100: 7}
        assert tx.n_reads == 1

    def test_writes_buffer_until_commit(self):
        memory = make_memory({0x100: 1})
        tx = Transaction(memory=memory)
        tx.write(0x100, 42)
        assert memory.read(0x100) == 1  # not yet visible
        tx.commit()
        assert memory.read(0x100) == 42

    def test_read_own_write(self):
        memory = make_memory({0x100: 1})
        tx = Transaction(memory=memory)
        tx.write(0x100, 5)
        assert tx.read(0x100) == 5
        assert tx.read_log == {}  # own writes are not validated reads

    def test_repeated_reads_hit_the_log(self):
        memory = make_memory({0x100: 9})
        tx = Transaction(memory=memory)
        tx.read(0x100)
        memory.write(0x100, 10)  # concurrent writer
        assert tx.read(0x100) == 9  # stable snapshot from the log

    def test_validation_value_based(self):
        memory = make_memory({0x100: 5})
        tx = Transaction(memory=memory)
        tx.read(0x100)
        memory.write(0x100, 6)
        assert not tx.validate()
        # Value-based: restoring the same bits revalidates (JudoSTM-style).
        memory.write(0x100, 5)
        assert tx.validate()

    def test_reset(self):
        memory = make_memory({0x100: 5})
        tx = Transaction(memory=memory)
        tx.read(0x100)
        tx.write(0x108, 1)
        tx.reset()
        assert tx.n_reads == 0 and tx.n_writes == 0


class TestSTMManager:
    def _finish(self, manager, tx, conflicts=False):
        ctx = ThreadContext(thread_id=1)
        return manager.finish(tx, ctx, conflicts_with_later=conflicts)

    def test_commit_charges_costs(self):
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        tx = manager.begin(1, checkpoint=None)
        tx.read(0x100)
        tx.write(0x108, 2)
        cycles = self._finish(manager, tx)
        assert cycles > 0
        assert memory.read(0x108) == 2
        assert manager.stats.transactions == 1
        assert manager.stats.reads == 1
        assert manager.stats.writes == 1
        assert manager.stats.aborts == 0

    def test_conflict_charges_abort_and_retry(self):
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        tx = manager.begin(1, checkpoint=None)
        tx.read(0x100)
        clean = self._finish(manager, tx)
        tx2 = manager.begin(2, checkpoint=None)
        tx2.read(0x100)
        conflicted = self._finish(manager, tx2, conflicts=True)
        assert conflicted > clean
        assert manager.stats.aborts == 1

    def test_failed_validation_counts_as_abort(self):
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        tx = manager.begin(1, checkpoint=None)
        tx.read(0x100)
        memory.write(0x100, 99)
        self._finish(manager, tx)
        assert manager.stats.aborts == 1


@given(ops=st.lists(
    st.tuples(st.booleans(), st.integers(0, 7),
              st.integers(-1000, 1000)), max_size=40))
def test_transaction_equivalent_to_direct_execution(ops):
    """Running ops through a tx then committing == running them directly."""
    initial = {8 * k: k + 1 for k in range(8)}
    direct = make_memory(initial)
    staged = make_memory(initial)
    tx = Transaction(memory=staged)
    reads_direct = []
    reads_tx = []
    for is_write, slot, value in ops:
        addr = 8 * slot
        if is_write:
            direct.write(addr, value)
            tx.write(addr, value)
        else:
            reads_direct.append(direct.read(addr))
            reads_tx.append(tx.read(addr))
    tx.commit()
    assert reads_direct == reads_tx
    assert direct.words == staged.words
