"""STM abort accounting: cycle charges and registry counters.

Satellite coverage for the telemetry PR: an abort must charge the
re-execution cycles on top of the clean commit cost, must increment
``stm.aborts`` exactly once per abort (even when a failed validation and
a late conflict coincide), and must emit exactly one ``stm.abort``
instant when telemetry is recording.
"""

import pytest

from repro.dbm.machine import ThreadContext
from repro.dbm.memory import Memory
from repro.isa.costs import CostModel
from repro.stm import STMManager
from repro.stm.stm import STMStats
from repro.telemetry.core import MetricRegistry, Recorder, disable, \
    set_recorder


@pytest.fixture(autouse=True)
def _restore_recorder():
    yield
    disable()


def make_memory(contents=None):
    memory = Memory()
    for addr, value in (contents or {}).items():
        memory.write(addr, value)
    return memory


def run_tx(manager, thread_id=1, reads=(), writes=(),
           poison=None, conflicts=False):
    """One begin/access/finish round; returns the cycles charged."""
    tx = manager.begin(thread_id, checkpoint=None)
    for addr in reads:
        tx.read(addr)
    for k, addr in enumerate(writes):
        tx.write(addr, 100 + k)
    if poison is not None:
        # A concurrent writer invalidates the read set before commit.
        manager.memory.write(poison, 12345)
    ctx = ThreadContext(thread_id=thread_id)
    return manager.finish(tx, ctx, conflicts_with_later=conflicts)


class TestAbortCycleCharge:
    def test_abort_charges_reexecution_cycles(self):
        cost = CostModel()
        memory = make_memory({0x100: 1, 0x108: 2})
        manager = STMManager(memory=memory, cost=cost)
        clean = run_tx(manager, reads=(0x100, 0x108), writes=(0x110,))
        conflicted = run_tx(manager, thread_id=2,
                            reads=(0x100, 0x108), writes=(0x110,),
                            conflicts=True)
        # The abort pays the rollback plus a non-speculative re-execution
        # of the access work (paper II-E3): reads + writes again.
        expected_penalty = (cost.stm_abort_cycles
                            + 2 * cost.stm_read_cycles
                            + 1 * cost.stm_write_cycles)
        assert conflicted - clean == expected_penalty

    def test_abort_cycles_land_in_ctx_and_stats(self):
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        tx = manager.begin(1, checkpoint=None)
        tx.read(0x100)
        ctx = ThreadContext(thread_id=1)
        charged = manager.finish(tx, ctx, conflicts_with_later=True)
        assert ctx.cycles == charged
        assert manager.stats.commit_cycles == charged


class TestAbortCounting:
    def test_one_abort_per_aborted_transaction(self):
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        run_tx(manager, reads=(0x100,), conflicts=True)
        run_tx(manager, thread_id=2, reads=(0x100,), poison=0x100)
        assert manager.stats.aborts == 2
        assert manager.stats.transactions == 2

    def test_coinciding_causes_count_once(self):
        """Failed validation + late conflict on one tx is still one abort."""
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        run_tx(manager, reads=(0x100,), poison=0x100, conflicts=True)
        assert manager.stats.aborts == 1

    def test_clean_commit_counts_no_abort(self):
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        run_tx(manager, reads=(0x100,), writes=(0x108,))
        assert manager.stats.aborts == 0

    def test_aborts_count_into_shared_registry(self):
        registry = MetricRegistry()
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel(),
                             stats=STMStats(registry))
        run_tx(manager, reads=(0x100,), conflicts=True)
        assert registry.get("stm.aborts") == 1
        assert registry.get("stm.transactions") == 1


class TestAbortInstants:
    def test_one_instant_per_abort(self):
        recorder = set_recorder(Recorder(label="test"))
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        run_tx(manager, reads=(0x100,), writes=(0x108,), conflicts=True)
        run_tx(manager, thread_id=2, reads=(0x100,))
        aborts = [e for e in recorder.events if e["name"] == "stm.abort"]
        assert len(aborts) == 1
        assert aborts[0]["args"] == {"thread": 1, "reads": 1, "writes": 1}

    def test_no_instants_when_disabled(self):
        disable()
        memory = make_memory({0x100: 1})
        manager = STMManager(memory=memory, cost=CostModel())
        run_tx(manager, reads=(0x100,), conflicts=True)
        assert manager.stats.aborts == 1  # counters still work


class TestLateConflictCharges:
    def _runtime(self):
        from repro.dbm.modifier import JanusDBM
        from repro.dbm.runtime import ParallelRuntime
        from repro.jbin.loader import load
        from repro.jcc import CompileOptions, compile_source

        image = compile_source(
            "int main() { print_int(1); return 0; }",
            CompileOptions(opt_level=2))
        dbm = JanusDBM(load(image))
        return dbm, ParallelRuntime(dbm)

    def _worker(self, thread_id, tx_log, writes=frozenset()):
        from repro.dbm.runtime import WorkerState

        return WorkerState(thread_id=thread_id,
                           ctx=ThreadContext(thread_id=thread_id),
                           chunks=[], meta=None,
                           writes=set(writes), tx_log=list(tx_log))

    def test_late_conflict_aborts_and_charges_worker(self):
        dbm, runtime = self._runtime()
        early = self._worker(1, tx_log=[({0x100, 0x108}, {0x110})])
        late = self._worker(2, tx_log=[], writes={0x100})
        runtime._charge_stm_late_conflicts([early, late])
        cost = dbm.cost
        penalty = (cost.stm_abort_cycles + 2 * cost.stm_read_cycles
                   + 1 * cost.stm_write_cycles)
        assert runtime.stm.stats.aborts == 1
        assert dbm.registry.get("stm.aborts") == 1
        assert early.ctx.cycles == penalty
        assert dbm.stats.stm_cycles == penalty
        assert late.ctx.cycles == 0  # the younger thread is not charged

    def test_commit_order_is_respected(self):
        """Writes by *earlier*-committing threads never abort a later one."""
        dbm, runtime = self._runtime()
        early = self._worker(1, tx_log=[], writes={0x100})
        late = self._worker(2, tx_log=[({0x100}, set())])
        runtime._charge_stm_late_conflicts([early, late])
        assert runtime.stm.stats.aborts == 0

    def test_late_conflict_emits_instant(self):
        recorder = set_recorder(Recorder(label="test"))
        _dbm, runtime = self._runtime()
        early = self._worker(1, tx_log=[({0x100}, set())])
        late = self._worker(2, tx_log=[], writes={0x100})
        runtime._charge_stm_late_conflicts([early, late])
        aborts = [e for e in recorder.events if e["name"] == "stm.abort"]
        assert len(aborts) == 1
        assert aborts[0]["args"]["late_conflict"] is True
