"""Tests for the JX standard library (shared-library substrate)."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin import layout
from repro.jbin.loader import LinkError, load
from repro.jbin.asm import Assembler
from repro.jbin.stdlib import build_standard_library, standard_library

from tests.helpers import floats, ints, run_asm

RAX, RDI, RSI, RDX = Reg(R.rax), Reg(R.rdi), Reg(R.rsi), Reg(R.rdx)
XMM0, XMM1 = Reg(R.xmm0), Reg(R.xmm1)


def test_exports_present():
    lib = build_standard_library()
    for name in ("pow", "sqrt", "fabs", "malloc", "free", "memcpy",
                 "memset_words", "rand", "srand", "print_int",
                 "print_double", "read_int", "exit"):
        assert name in lib.exports
    for addr in lib.exports.values():
        assert lib.image.text.contains(addr)


def test_library_is_cached():
    assert standard_library() is standard_library()


def test_print_int_via_library():
    def build(a):
        fn = a.import_symbol("print_int")
        a.label("_start")
        a.emit(O.MOV, RDI, Imm(123))
        a.emit(O.CALL, fn)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [123]


def test_pow_profile_and_determinism():
    """pow reads its 11-entry table and computes y * P(x) deterministically."""

    def build(a):
        fn = a.import_symbol("pow")
        pr = a.import_symbol("print_double")
        a.double("x", 1.0)
        a.double("y", 2.0)
        a.label("_start")
        a.emit(O.MOVSD, XMM0, Mem(disp=Label("x")))
        a.emit(O.MOVSD, XMM1, Mem(disp=Label("y")))
        a.emit(O.CALL, fn)
        a.emit(O.CALL, pr)
        a.emit(O.RET)

    result = run_asm(build)
    # P(1) = sum 1/k! for k=0..10 ~= e; result = 2 * P(1).
    e_approx = sum(1.0 / __import__("math").factorial(k) for k in range(11))
    assert floats(result) == [pytest.approx(2.0 * e_approx)]


def test_sqrt():
    def build(a):
        fn = a.import_symbol("sqrt")
        pr = a.import_symbol("print_double")
        a.double("x", 16.0)
        a.label("_start")
        a.emit(O.MOVSD, XMM0, Mem(disp=Label("x")))
        a.emit(O.CALL, fn)
        a.emit(O.CALL, pr)
        a.emit(O.RET)

    assert floats(run_asm(build)) == [pytest.approx(4.0)]


def test_fabs_both_signs():
    def build(a):
        fn = a.import_symbol("fabs")
        pr = a.import_symbol("print_double")
        a.double("pos", 2.5)
        a.double("neg", -2.5)
        a.label("_start")
        for name in ("pos", "neg"):
            a.emit(O.MOVSD, XMM0, Mem(disp=Label(name)))
            a.emit(O.CALL, fn)
            a.emit(O.CALL, pr)
        a.emit(O.RET)

    assert floats(run_asm(build)) == [2.5, 2.5]


def test_malloc_bump_allocation():
    def build(a):
        malloc = a.import_symbol("malloc")
        pr = a.import_symbol("print_int")
        a.label("_start")
        a.emit(O.MOV, RDI, Imm(100))
        a.emit(O.CALL, malloc)
        a.emit(O.MOV, RDI, RAX)
        a.emit(O.CALL, pr)
        a.emit(O.MOV, RDI, Imm(8))
        a.emit(O.CALL, malloc)
        a.emit(O.MOV, RDI, RAX)
        a.emit(O.CALL, pr)
        a.emit(O.RET)

    first, second = ints(run_asm(build))
    assert first == layout.HEAP_BASE
    assert second == layout.HEAP_BASE + 112  # 100 rounded up to 112


def test_memset_and_memcpy():
    def build(a):
        memset = a.import_symbol("memset_words")
        memcpy = a.import_symbol("memcpy")
        pr = a.import_symbol("print_int")
        src = a.space("src", 4)
        dst = a.space("dst", 4)
        a.label("_start")
        a.emit(O.MOV, RDI, src)
        a.emit(O.MOV, RSI, Imm(7))
        a.emit(O.MOV, RDX, Imm(4))
        a.emit(O.CALL, memset)
        a.emit(O.MOV, RDI, dst)
        a.emit(O.MOV, RSI, src)
        a.emit(O.MOV, RDX, Imm(4))
        a.emit(O.CALL, memcpy)
        from repro.isa.operands import LabelRef
        for k in range(4):
            a.emit(O.MOV, RDI, Mem(disp=LabelRef("dst", 8 * k)))
            a.emit(O.CALL, pr)
        a.emit(O.RET)

    assert ints(run_asm(build)) == [7, 7, 7, 7]


def test_rand_deterministic_and_bounded():
    def build(a):
        rand = a.import_symbol("rand")
        srand = a.import_symbol("srand")
        pr = a.import_symbol("print_int")
        a.label("_start")
        a.emit(O.MOV, RDI, Imm(12345))
        a.emit(O.CALL, srand)
        for _ in range(3):
            a.emit(O.CALL, rand)
            a.emit(O.MOV, RDI, RAX)
            a.emit(O.CALL, pr)
        a.emit(O.RET)

    first = ints(run_asm(build))
    second = ints(run_asm(build))
    assert first == second
    assert all(0 <= v < 2**31 for v in first)
    assert len(set(first)) == 3


def test_unresolved_import_fails_at_load():
    a = Assembler()
    missing = a.import_symbol("no_such_function")
    a.label("_start")
    a.emit(O.CALL, missing)
    a.emit(O.RET)
    image = a.assemble(entry="_start")
    with pytest.raises(LinkError):
        load(image)


def test_pow_access_profile_matches_paper():
    """Paper section III-B: ~49 instructions, 11 heap reads, 0 writes."""
    from repro.isa.decoder import decode_range

    lib = standard_library()
    start = lib.exports["pow"]
    end = lib.exports["sqrt"]
    body = decode_range(lib.image.text.data, lib.image.text.addr, start, end)
    reads = sum(len(i.mem_reads()) for i in body)
    writes = sum(len(i.mem_writes()) for i in body)
    assert reads == 11
    assert writes == 0
    assert 25 <= len(body) <= 60
