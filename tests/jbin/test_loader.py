"""Tests for process loading and PLT linking."""

import pytest

from repro.isa import Imm, Opcode as O, Reg
from repro.isa.registers import R
from repro.jbin import layout
from repro.jbin.asm import Assembler
from repro.jbin.image import ImageError
from repro.jbin.loader import load
from repro.jbin.stdlib import standard_library


def make_process(with_import=True):
    a = Assembler()
    a.word("g", 123)
    a.double("d", 2.5)
    if with_import:
        powf = a.import_symbol("pow")
    a.label("_start")
    if with_import:
        a.emit(O.CALL, powf)
    a.emit(O.RET)
    return load(a.assemble(entry="_start"))


class TestCodeMapping:
    def test_application_and_library_text_mapped(self):
        process = make_process()
        data, base = process.code_at(process.entry)
        assert base == layout.TEXT_BASE
        lib = standard_library()
        pow_addr = lib.exports["pow"]
        data, base = process.code_at(pow_addr)
        assert base == layout.LIB_TEXT_BASE
        assert process.is_library_code(pow_addr)
        assert process.is_application_code(process.entry)

    def test_unmapped_address_rejected(self):
        process = make_process()
        with pytest.raises(ImageError):
            process.code_at(0xDEAD0000)

    def test_plt_resolution(self):
        process = make_process()
        slot = next(iter(process.image.imports))
        resolved = process.resolve_target(slot)
        assert resolved == standard_library().exports["pow"]
        # Non-PLT addresses pass through untouched.
        assert process.resolve_target(process.entry) == process.entry


class TestInitialData:
    def test_app_and_library_words(self):
        process = make_process()
        words = dict(process.initial_data())
        assert words[layout.DATA_BASE] == 123
        # Library data (the pow coefficient table) is initialised too.
        lib_words = [a for a in words if a >= layout.LIB_DATA_BASE]
        assert lib_words

    def test_zero_words_skipped(self):
        a = Assembler()
        a.word("zeros", 0, 0, 5)
        a.label("_start")
        a.emit(O.RET)
        process = load(a.assemble(entry="_start"))
        words = dict(process.initial_data())
        assert layout.DATA_BASE not in words
        assert words[layout.DATA_BASE + 16] == 5

    def test_inputs_copied_not_shared(self):
        inputs = [1, 2, 3]
        a = Assembler()
        a.label("_start")
        a.emit(O.RET)
        process = load(a.assemble(entry="_start"), inputs=inputs)
        inputs.append(99)
        assert process.inputs == [1, 2, 3]
