"""Tests for the JELF container format."""

import pytest
from hypothesis import given, strategies as st

from repro.jbin.image import ImageError, JELF, Section


def make_image(**overrides):
    defaults = dict(
        entry=0x400000,
        text=Section(".text", 0x400000, b"\x01\x02\x03"),
        data=Section(".data", 0x10000000, b"\x00" * 16),
        bss_size=64,
        imports={0x4F0000: "pow", 0x4F0010: "malloc"},
        symbols={},
        comment="jcc 1.0 -O3",
    )
    defaults.update(overrides)
    return JELF(**defaults)


def test_round_trip():
    image = make_image(symbols={"main": 0x400000, "helper": 0x400010})
    clone = JELF.deserialize(image.serialize())
    assert clone.entry == image.entry
    assert clone.text.data == image.text.data
    assert clone.text.addr == image.text.addr
    assert clone.data.data == image.data.data
    assert clone.bss_size == image.bss_size
    assert clone.imports == image.imports
    assert clone.symbols == image.symbols
    assert clone.comment == image.comment


def test_stripped_by_default():
    assert make_image().stripped
    assert not make_image(symbols={"main": 1}).stripped


def test_strip_removes_symbols_keeps_imports():
    image = make_image(symbols={"main": 0x400000})
    stripped = image.strip()
    assert stripped.stripped
    assert stripped.imports == image.imports
    assert stripped.text.data == image.text.data


def test_import_lookup():
    image = make_image()
    assert image.import_name(0x4F0000) == "pow"
    assert image.import_name(0x400000) is None
    assert image.is_plt_address(0x4F0010)


def test_text_bytes_at():
    image = make_image()
    data, base = image.text_bytes_at(0x400001)
    assert base == 0x400000
    assert data == b"\x01\x02\x03"
    with pytest.raises(ImageError):
        image.text_bytes_at(0x500000)


def test_bad_magic_rejected():
    with pytest.raises(ImageError):
        JELF.deserialize(b"ELF\x7f" + b"\x00" * 64)


def test_truncated_rejected():
    raw = make_image().serialize()
    with pytest.raises(ImageError):
        JELF.deserialize(raw[: len(raw) // 2])


def test_section_contains():
    section = Section(".text", 0x400000, b"abcd")
    assert section.contains(0x400000)
    assert section.contains(0x400003)
    assert not section.contains(0x400004)
    assert section.end == 0x400004


@given(text=st.binary(max_size=200), data=st.binary(max_size=200),
       entry=st.integers(min_value=0, max_value=2**48),
       bss=st.integers(min_value=0, max_value=2**20),
       comment=st.text(max_size=40))
def test_round_trip_property(text, data, entry, bss, comment):
    image = JELF(entry=entry,
                 text=Section(".text", 0x400000, text),
                 data=Section(".data", 0x10000000, data),
                 bss_size=bss, comment=comment)
    clone = JELF.deserialize(image.serialize())
    assert clone.text.data == text
    assert clone.data.data == data
    assert clone.entry == entry
    assert clone.bss_size == bss
    assert clone.comment == comment
