"""Tests for the two-pass assembler."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg, decode_range
from repro.isa.operands import Label, LabelRef
from repro.isa.registers import R
from repro.jbin import layout
from repro.jbin.asm import Assembler, AssemblyError


def test_forward_and_backward_labels_resolve():
    a = Assembler()
    a.label("_start")
    a.emit(O.MOV, Reg(R.rax), Imm(0))
    a.label("loop")
    a.emit(O.INC, Reg(R.rax))
    a.emit(O.CMP, Reg(R.rax), Imm(10))
    a.emit(O.JL, Label("loop"))
    a.emit(O.JMP, Label("done"))
    a.label("done")
    a.emit(O.RET)
    image = a.assemble(entry="_start")
    decoded = decode_range(image.text.data, image.text.addr, image.text.addr)
    jl = decoded[3]
    assert jl.opcode is O.JL
    assert jl.operands[0].value == decoded[1].address  # loop
    jmp = decoded[4]
    assert jmp.operands[0].value == decoded[5].address  # done


def test_data_words_and_labels():
    a = Assembler()
    counter = a.word("counter", 7)
    table = a.word("table", 1, 2, 3)
    a.label("_start")
    a.emit(O.MOV, Reg(R.rax), Mem(disp=counter))
    a.emit(O.MOV, Reg(R.rbx), Mem(disp=LabelRef("table", 16)))
    a.emit(O.RET)
    image = a.assemble(entry="_start", strip=False)
    assert image.symbols["counter"] == layout.DATA_BASE
    assert image.symbols["table"] == layout.DATA_BASE + 8
    decoded = decode_range(image.text.data, image.text.addr, image.text.addr)
    assert decoded[0].operands[1].disp == layout.DATA_BASE
    assert decoded[1].operands[1].disp == layout.DATA_BASE + 8 + 16
    # Data contents round-trip.
    import struct
    values = struct.unpack_from("<4q", image.data.data, 0)
    assert values == (7, 1, 2, 3)


def test_doubles_stored_as_bit_patterns():
    import struct

    a = Assembler()
    a.double("pi", 3.14159)
    a.label("_start")
    a.emit(O.RET)
    image = a.assemble(entry="_start")
    (bits,) = struct.unpack_from("<d", image.data.data, 0)
    assert bits == pytest.approx(3.14159)


def test_bss_follows_data():
    a = Assembler()
    a.word("x", 1)
    buf = a.space("buffer", 100)
    a.label("_start")
    a.emit(O.MOV, Reg(R.rax), Mem(disp=buf))
    a.emit(O.RET)
    image = a.assemble(entry="_start", strip=False)
    assert image.symbols["buffer"] == layout.DATA_BASE + 8
    assert image.bss_size == 800


def test_imports_get_plt_slots():
    a = Assembler()
    pow_label = a.import_symbol("pow")
    sqrt_label = a.import_symbol("sqrt")
    a.label("_start")
    a.emit(O.CALL, pow_label)
    a.emit(O.CALL, sqrt_label)
    a.emit(O.RET)
    image = a.assemble(entry="_start")
    assert image.imports == {
        layout.PLT_BASE: "pow",
        layout.PLT_BASE + layout.PLT_ENTRY_SIZE: "sqrt",
    }
    decoded = decode_range(image.text.data, image.text.addr, image.text.addr)
    assert decoded[0].operands[0].value == layout.PLT_BASE


def test_import_symbol_is_idempotent():
    a = Assembler()
    first = a.import_symbol("pow")
    second = a.import_symbol("pow")
    assert first == second
    a.label("_start")
    a.emit(O.RET)
    assert len(a.assemble(entry="_start").imports) == 1


def test_duplicate_label_rejected():
    a = Assembler()
    a.label("x")
    with pytest.raises(AssemblyError):
        a.label("x")
    with pytest.raises(AssemblyError):
        a.word("x", 1)


def test_undefined_label_rejected():
    a = Assembler()
    a.label("_start")
    a.emit(O.JMP, Label("nowhere"))
    with pytest.raises(AssemblyError):
        a.assemble(entry="_start")


def test_missing_entry_rejected():
    a = Assembler()
    a.label("f")
    a.emit(O.RET)
    with pytest.raises(AssemblyError):
        a.assemble(entry="_start")


def test_stripped_by_default():
    a = Assembler()
    a.label("_start")
    a.emit(O.RET)
    assert a.assemble(entry="_start").stripped
    assert not a.assemble(entry="_start", strip=False).stripped
