"""Tests for the JOMP fork/join syscall brackets (compiler baselines)."""

import pytest

from repro.isa import Imm, Mem, Opcode as O, Reg
from repro.isa.operands import Label
from repro.isa.registers import R
from repro.jbin import syscalls
from repro.jbin.asm import Assembler
from repro.jbin.loader import load
from repro.dbm.executor import run_native


def spin_program(threads, iterations=2000, bracketed=True):
    """A counted loop, optionally bracketed by JOMP_BEGIN/END."""
    a = Assembler()
    a.label("_start")
    if bracketed:
        a.emit(O.MOV, Reg(R.rdi), Imm(threads))
        a.emit(O.MOV, Reg(R.rax), Imm(syscalls.JOMP_BEGIN))
        a.emit(O.SYSCALL)
    a.emit(O.MOV, Reg(R.rcx), Imm(0))
    a.label("loop")
    a.emit(O.INC, Reg(R.rcx))
    a.emit(O.CMP, Reg(R.rcx), Imm(iterations))
    a.emit(O.JL, Label("loop"))
    if bracketed:
        a.emit(O.MOV, Reg(R.rax), Imm(syscalls.JOMP_END))
        a.emit(O.SYSCALL)
    a.emit(O.MOV, Reg(R.rdi), Reg(R.rcx))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)
    a.emit(O.RET)
    return load(a.assemble(entry="_start"))


def test_bracketed_region_cycles_divided():
    serial = run_native(spin_program(1, bracketed=False))
    four = run_native(spin_program(4))
    # Semantics identical.
    assert serial.outputs == four.outputs
    # Cycles divided by the thread count plus the fork/join overhead.
    assert four.cycles < serial.cycles
    assert four.cycles > serial.cycles / 4


def test_more_threads_means_fewer_cycles():
    two = run_native(spin_program(2))
    eight = run_native(spin_program(8))
    assert eight.cycles < two.cycles
    assert two.outputs == eight.outputs


def test_zero_threads_clamped():
    # rdi = 0 must not divide by zero.
    result = run_native(spin_program(0))
    assert result.outputs[0][1] == 2000


def test_unbalanced_end_is_harmless():
    a = Assembler()
    a.label("_start")
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.JOMP_END))
    a.emit(O.SYSCALL)  # END without BEGIN: ignored
    a.emit(O.MOV, Reg(R.rdi), Imm(5))
    a.emit(O.MOV, Reg(R.rax), Imm(syscalls.PRINT_INT))
    a.emit(O.SYSCALL)
    a.emit(O.RET)
    result = run_native(load(a.assemble(entry="_start")))
    assert result.outputs == [("i", 5)]
